#include "core/selector.h"

#include <cmath>

#include "common/check.h"
#include "nn/serialize.h"

namespace nec::core {
namespace {

constexpr std::size_t kDilations[] = {1, 2, 4, 8};

}  // namespace

Selector::Selector(const NecConfig& config, std::uint64_t init_seed)
    : config_(config) {
  Rng rng(init_seed ^ 0x8AD1F2C1B7E94E2DULL);
  const std::size_t C = config_.conv_channels;

  // Conv 1x7 (frequency), Conv 7x1 (time), 4 dilated 5x5, final 5x5 -> 2.
  convs_.push_back(std::make_unique<nn::Conv2D>(1, C, 1, 7, 1, 1, rng));
  convs_.push_back(std::make_unique<nn::Conv2D>(C, C, 7, 1, 1, 1, rng));
  for (std::size_t d : kDilations) {
    convs_.push_back(std::make_unique<nn::Conv2D>(C, C, 5, 5, d, 1, rng));
  }
  convs_.push_back(std::make_unique<nn::Conv2D>(C, 2, 5, 5, 1, 1, rng));
  conv_relus_.resize(convs_.size());

  const std::size_t F = config_.num_bins();
  fc1_ = std::make_unique<nn::Linear>(2 * F + config_.embedding_dim,
                                      config_.fc_hidden, rng);
  fc2_ = std::make_unique<nn::Linear>(config_.fc_hidden, F, rng);
  // Near-zero head init: the mask starts flat at 0.5 rather than random,
  // which keeps the first training steps close to a sane baseline.
  fc2_->weight().value.Scale(0.01f);
}

nn::Tensor Selector::Forward(const nn::Tensor& mixed_mag,
                             const std::vector<float>& dvector,
                             bool /*training*/) {
  NEC_CHECK_MSG(mixed_mag.rank() == 2 &&
                    mixed_mag.dim(1) == config_.num_bins(),
                "selector expects (T, F) input with F = "
                    << config_.num_bins());
  NEC_CHECK_MSG(dvector.size() == config_.embedding_dim,
                "d-vector dim " << dvector.size() << " != configured "
                                << config_.embedding_dim);
  const std::size_t T = mixed_mag.dim(0);
  const std::size_t F = config_.num_bins();
  cached_T_ = T;

  // (T, F) -> (1, T, F) for the conv stack. The conv features see a
  // square-root-compressed view of the magnitudes (standard for masking
  // networks: compresses the dynamic range so formant structure is not
  // drowned by the loudest cells); the output shadow stays linear, so the
  // Eq. 5/6 superposition algebra is untouched.
  nn::Tensor x({1, T, F});
  for (std::size_t i = 0; i < x.numel(); ++i) {
    const float v = mixed_mag[i];
    x[i] = v > 0.0f ? std::sqrt(v) : 0.0f;
  }
  for (std::size_t i = 0; i < convs_.size(); ++i) {
    x = convs_[i]->Forward(x);
    // Final conv layer also passes through ReLU per the paper's uniform
    // activation choice; its output is re-signed by the FC head.
    x = conv_relus_[i].Forward(x);
  }

  // (2, T, F) -> (T, 2F + E): frame t = [ch0 row t, ch1 row t, d-vector].
  NEC_CHECK(x.rank() == 3 && x.dim(0) == 2);
  nn::Tensor fused({T, 2 * F + config_.embedding_dim});
  for (std::size_t t = 0; t < T; ++t) {
    float* row = fused.data() + t * (2 * F + config_.embedding_dim);
    for (std::size_t f = 0; f < F; ++f) row[f] = x.At3(0, t, f);
    for (std::size_t f = 0; f < F; ++f) row[F + f] = x.At3(1, t, f);
    for (std::size_t e = 0; e < config_.embedding_dim; ++e) {
      row[2 * F + e] = dvector[e];
    }
  }

  nn::Tensor h = fc_relu_.Forward(fc1_->Forward(fused));
  nn::Tensor logits = fc2_->Forward(h);  // (T, F)

  // Masked shadow head: shadow = -sigmoid(logits) * S_mixed. The selector
  // decides, per T-F cell, what fraction of the mixed energy belongs to
  // the target; the superposed record S_mixed + shadow = (1-mask)*S_mixed
  // stays a valid non-negative spectrogram. (The raw-regression head the
  // paper's text suggests trains far less stably — see DESIGN.md §5.)
  nn::Tensor mask = mask_sigmoid_.Forward(logits);
  mask_input_cache_ = mixed_mag;
  nn::Tensor shadow({T, F});
  for (std::size_t i = 0; i < shadow.numel(); ++i) {
    shadow[i] = -mask[i] * mixed_mag[i];
  }
  return shadow;
}

nn::Tensor Selector::Infer(const nn::Tensor& mixed_mag,
                           const std::vector<float>& dvector) const {
  // Mirror of Forward through the layers' cache-free Infer path; every
  // arithmetic step matches Forward exactly (the runtime test suite pins
  // Infer == Forward bit-for-bit). No member state is written here: that is
  // what lets nec::runtime sessions share one trained Selector across
  // threads.
  NEC_CHECK_MSG(mixed_mag.rank() == 2 &&
                    mixed_mag.dim(1) == config_.num_bins(),
                "selector expects (T, F) input with F = "
                    << config_.num_bins());
  NEC_CHECK_MSG(dvector.size() == config_.embedding_dim,
                "d-vector dim " << dvector.size() << " != configured "
                                << config_.embedding_dim);
  const std::size_t T = mixed_mag.dim(0);
  const std::size_t F = config_.num_bins();

  nn::Tensor x({1, T, F});
  for (std::size_t i = 0; i < x.numel(); ++i) {
    const float v = mixed_mag[i];
    x[i] = v > 0.0f ? std::sqrt(v) : 0.0f;
  }
  for (std::size_t i = 0; i < convs_.size(); ++i) {
    x = conv_relus_[i].Infer(convs_[i]->Infer(x));
  }

  NEC_CHECK(x.rank() == 3 && x.dim(0) == 2);
  nn::Tensor fused({T, 2 * F + config_.embedding_dim});
  for (std::size_t t = 0; t < T; ++t) {
    float* row = fused.data() + t * (2 * F + config_.embedding_dim);
    for (std::size_t f = 0; f < F; ++f) row[f] = x.At3(0, t, f);
    for (std::size_t f = 0; f < F; ++f) row[F + f] = x.At3(1, t, f);
    for (std::size_t e = 0; e < config_.embedding_dim; ++e) {
      row[2 * F + e] = dvector[e];
    }
  }

  nn::Tensor h = fc_relu_.Infer(fc1_->Infer(fused));
  nn::Tensor logits = fc2_->Infer(h);  // (T, F)

  nn::Tensor mask = mask_sigmoid_.Infer(logits);
  nn::Tensor shadow({T, F});
  for (std::size_t i = 0; i < shadow.numel(); ++i) {
    shadow[i] = -mask[i] * mixed_mag[i];
  }
  return shadow;
}

std::vector<nn::Tensor> Selector::InferBatch(
    const std::vector<const nn::Tensor*>& mixed_mags,
    const std::vector<const std::vector<float>*>& dvectors) const {
  const std::size_t B = mixed_mags.size();
  NEC_CHECK_MSG(B >= 1, "InferBatch on an empty batch");
  NEC_CHECK_MSG(dvectors.size() == B,
                "InferBatch: " << B << " mags vs " << dvectors.size()
                               << " d-vectors");
  const std::size_t F = config_.num_bins();
  const std::size_t E = config_.embedding_dim;
  NEC_CHECK_MSG(mixed_mags[0] != nullptr && mixed_mags[0]->rank() == 2 &&
                    mixed_mags[0]->dim(1) == F,
                "selector expects (T, F) input with F = " << F);
  const std::size_t T = mixed_mags[0]->dim(0);
  for (std::size_t b = 0; b < B; ++b) {
    NEC_CHECK_MSG(mixed_mags[b] != nullptr && dvectors[b] != nullptr,
                  "InferBatch: null item " << b);
    NEC_CHECK_MSG(mixed_mags[b]->rank() == 2 &&
                      mixed_mags[b]->dim(0) == T &&
                      mixed_mags[b]->dim(1) == F,
                  "InferBatch items must share (T, F); item "
                      << b << " differs");
    NEC_CHECK_MSG(dvectors[b]->size() == E,
                  "d-vector dim " << dvectors[b]->size()
                                  << " != configured " << E);
  }

  // Mirror of Infer with a leading batch dim. Every per-item arithmetic
  // step below is the exact code Infer runs — same sqrt compression, same
  // conv kernel per item (Conv2D::InferBatch loops the per-item GEMM over
  // shared weights), same row-independent FC GEMM — so each item's shadow
  // is bit-identical to its solo Infer result (test-enforced).
  nn::Tensor x({B, 1, T, F});
  for (std::size_t b = 0; b < B; ++b) {
    const nn::Tensor& mag = *mixed_mags[b];
    float* dst = x.data() + b * T * F;
    for (std::size_t i = 0; i < T * F; ++i) {
      const float v = mag[i];
      dst[i] = v > 0.0f ? std::sqrt(v) : 0.0f;
    }
  }
  for (std::size_t i = 0; i < convs_.size(); ++i) {
    x = conv_relus_[i].InferBatch(convs_[i]->InferBatch(x));
  }

  // (B, 2, T, F) -> (B, T, 2F + E).
  NEC_CHECK(x.rank() == 4 && x.dim(1) == 2);
  nn::Tensor fused({B, T, 2 * F + E});
  for (std::size_t b = 0; b < B; ++b) {
    const float* ch0 = x.data() + b * 2 * T * F;
    const float* ch1 = ch0 + T * F;
    const std::vector<float>& dvector = *dvectors[b];
    for (std::size_t t = 0; t < T; ++t) {
      float* row = fused.data() + (b * T + t) * (2 * F + E);
      for (std::size_t f = 0; f < F; ++f) row[f] = ch0[t * F + f];
      for (std::size_t f = 0; f < F; ++f) row[F + f] = ch1[t * F + f];
      for (std::size_t e = 0; e < E; ++e) row[2 * F + e] = dvector[e];
    }
  }

  nn::Tensor h = fc_relu_.InferBatch(fc1_->InferBatch(fused));
  nn::Tensor logits = fc2_->InferBatch(h);  // (B, T, F)

  nn::Tensor mask = mask_sigmoid_.InferBatch(logits);
  std::vector<nn::Tensor> shadows;
  shadows.reserve(B);
  for (std::size_t b = 0; b < B; ++b) {
    const nn::Tensor& mag = *mixed_mags[b];
    const float* m = mask.data() + b * T * F;
    nn::Tensor shadow({T, F});
    for (std::size_t i = 0; i < T * F; ++i) {
      shadow[i] = -m[i] * mag[i];
    }
    shadows.push_back(std::move(shadow));
  }
  return shadows;
}

void Selector::Backward(const nn::Tensor& grad_shadow) {
  const std::size_t T = cached_T_;
  const std::size_t F = config_.num_bins();
  NEC_CHECK_MSG(T > 0, "Backward before Forward");
  NEC_CHECK(grad_shadow.rank() == 2 && grad_shadow.dim(0) == T &&
            grad_shadow.dim(1) == F);

  // Through the masked head: dL/dMask = dL/dShadow * (-S_mixed).
  nn::Tensor grad_mask = grad_shadow;
  for (std::size_t i = 0; i < grad_mask.numel(); ++i) {
    grad_mask[i] *= -mask_input_cache_[i];
  }
  nn::Tensor grad_logits = mask_sigmoid_.Backward(grad_mask);

  nn::Tensor g = fc1_->Backward(fc_relu_.Backward(fc2_->Backward(grad_logits)));

  // Split (T, 2F + E) gradient back to the conv output (2, T, F); the
  // d-vector slice is a constant input, its gradient is dropped.
  nn::Tensor gx({2, T, F});
  for (std::size_t t = 0; t < T; ++t) {
    const float* row = g.data() + t * (2 * F + config_.embedding_dim);
    for (std::size_t f = 0; f < F; ++f) gx.At3(0, t, f) = row[f];
    for (std::size_t f = 0; f < F; ++f) gx.At3(1, t, f) = row[F + f];
  }

  for (std::size_t i = convs_.size(); i-- > 0;) {
    gx = convs_[i]->Backward(conv_relus_[i].Backward(gx));
  }
}

std::vector<nn::Param*> Selector::Params() {
  std::vector<nn::Param*> params;
  for (auto& conv : convs_) {
    for (nn::Param* p : conv->Params()) params.push_back(p);
  }
  for (nn::Param* p : fc1_->Params()) params.push_back(p);
  for (nn::Param* p : fc2_->Params()) params.push_back(p);
  return params;
}

void Selector::ComputeShadowInto(const dsp::Spectrogram& spec,
                                 const std::vector<float>& dvector,
                                 std::vector<float>& out) const {
  const std::size_t T = spec.num_frames(), F = spec.num_bins();
  NEC_CHECK(F == config_.num_bins());

  // Per-instance gain normalization.
  double acc = 0.0;
  for (float m : spec.mag()) acc += static_cast<double>(m) * m;
  const float rms = static_cast<float>(
      std::sqrt(acc / std::max<std::size_t>(1, spec.mag().size())));
  const float gain = rms > 1e-9f ? 1.0f / rms : 1.0f;

  nn::Tensor input({T, F});
  for (std::size_t i = 0; i < input.numel(); ++i) {
    input[i] = spec.mag()[i] * gain;
  }
  nn::Tensor shadow = Infer(input, dvector);
  out.resize(shadow.numel());
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = shadow[i] / gain;
  }
}

std::vector<float> Selector::ComputeShadow(
    const dsp::Spectrogram& spec, const std::vector<float>& dvector) const {
  std::vector<float> out;
  ComputeShadowInto(spec, dvector, out);
  return out;
}

std::vector<std::vector<float>> Selector::ComputeShadowBatch(
    const std::vector<const dsp::Spectrogram*>& specs,
    const std::vector<const std::vector<float>*>& dvectors) const {
  const std::size_t B = specs.size();
  NEC_CHECK_MSG(B >= 1, "ComputeShadowBatch on an empty batch");
  NEC_CHECK(dvectors.size() == B);
  const std::size_t F = config_.num_bins();

  // Per-item gain normalization — identical to ComputeShadow's, applied
  // before stacking so batching cannot couple items through the gain.
  std::vector<nn::Tensor> inputs(B);
  std::vector<float> gains(B);
  for (std::size_t b = 0; b < B; ++b) {
    NEC_CHECK_MSG(specs[b] != nullptr, "null spectrogram in batch");
    const dsp::Spectrogram& spec = *specs[b];
    NEC_CHECK(spec.num_bins() == F);
    double acc = 0.0;
    for (float m : spec.mag()) acc += static_cast<double>(m) * m;
    const float rms = static_cast<float>(
        std::sqrt(acc / std::max<std::size_t>(1, spec.mag().size())));
    gains[b] = rms > 1e-9f ? 1.0f / rms : 1.0f;

    nn::Tensor input({spec.num_frames(), F});
    for (std::size_t i = 0; i < input.numel(); ++i) {
      input[i] = spec.mag()[i] * gains[b];
    }
    inputs[b] = std::move(input);
  }

  std::vector<const nn::Tensor*> mag_ptrs(B);
  for (std::size_t b = 0; b < B; ++b) mag_ptrs[b] = &inputs[b];
  std::vector<nn::Tensor> shadows = InferBatch(mag_ptrs, dvectors);

  std::vector<std::vector<float>> out(B);
  for (std::size_t b = 0; b < B; ++b) {
    out[b].resize(shadows[b].numel());
    for (std::size_t i = 0; i < out[b].size(); ++i) {
      out[b][i] = shadows[b][i] / gains[b];
    }
  }
  return out;
}

std::size_t Selector::LastForwardMacs() const {
  std::size_t macs = 0;
  for (const auto& conv : convs_) macs += conv->LastForwardMacs();
  macs += fc1_->LastForwardMacs() + fc2_->LastForwardMacs();
  return macs;
}

void Selector::Save(const std::string& path) const {
  nn::TensorMap map;
  // Persist the config alongside the weights.
  nn::Tensor meta({8});
  meta[0] = static_cast<float>(config_.sample_rate);
  meta[1] = static_cast<float>(config_.stft.fft_size);
  meta[2] = static_cast<float>(config_.stft.win_length);
  meta[3] = static_cast<float>(config_.stft.hop_length);
  meta[4] = static_cast<float>(config_.conv_channels);
  meta[5] = static_cast<float>(config_.fc_hidden);
  meta[6] = static_cast<float>(config_.embedding_dim);
  meta[7] = 1.0f;  // format version
  map.emplace("meta", std::move(meta));

  for (std::size_t i = 0; i < convs_.size(); ++i) {
    map.emplace("conv" + std::to_string(i) + ".w", convs_[i]->weight().value);
    map.emplace("conv" + std::to_string(i) + ".b", convs_[i]->bias().value);
  }
  map.emplace("fc1.w", fc1_->weight().value);
  map.emplace("fc1.b", fc1_->bias().value);
  map.emplace("fc2.w", fc2_->weight().value);
  map.emplace("fc2.b", fc2_->bias().value);
  nn::SaveTensors(path, map);
}

Selector Selector::Load(const std::string& path) {
  const nn::TensorMap map = nn::LoadTensors(path);
  const nn::Tensor& meta = map.at("meta");
  NecConfig cfg;
  cfg.sample_rate = static_cast<int>(meta[0]);
  cfg.stft.fft_size = static_cast<std::size_t>(meta[1]);
  cfg.stft.win_length = static_cast<std::size_t>(meta[2]);
  cfg.stft.hop_length = static_cast<std::size_t>(meta[3]);
  cfg.conv_channels = static_cast<std::size_t>(meta[4]);
  cfg.fc_hidden = static_cast<std::size_t>(meta[5]);
  cfg.embedding_dim = static_cast<std::size_t>(meta[6]);

  Selector s(cfg);
  for (std::size_t i = 0; i < s.convs_.size(); ++i) {
    s.convs_[i]->weight().value = map.at("conv" + std::to_string(i) + ".w");
    s.convs_[i]->bias().value = map.at("conv" + std::to_string(i) + ".b");
  }
  s.fc1_->weight().value = map.at("fc1.w");
  s.fc1_->bias().value = map.at("fc1.b");
  s.fc2_->weight().value = map.at("fc2.w");
  s.fc2_->bias().value = map.at("fc2.b");
  return s;
}

// Compile-time trail for the concurrency contract: everything a runtime
// session calls per chunk on the *shared* model must be const-invocable.
// If a future change drops const from one of these, sharing a Selector
// across sessions silently becomes a data race — fail the build instead.
static_assert(
    requires(const Selector& s, const dsp::Spectrogram& spec,
             const nn::Tensor& mag, const std::vector<float>& d,
             const std::vector<const dsp::Spectrogram*>& specs,
             const std::vector<const nn::Tensor*>& mags,
             const std::vector<const std::vector<float>*>& ds,
             std::vector<float>& shadow_out) {
      s.ComputeShadow(spec, d);
      s.ComputeShadowInto(spec, d, shadow_out);
      s.Infer(mag, d);
      s.InferBatch(mags, ds);
      s.ComputeShadowBatch(specs, ds);
      s.config();
    },
    "Selector inference entry points must stay const for nec::runtime "
    "weight sharing");

}  // namespace nec::core
