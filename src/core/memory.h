// Hot-path memory primitives: bump arena, RAII arena scope, size-classed
// buffer pool, and non-owning tensor views (DESIGN.md §5i).
//
// The per-chunk serving path (Stft → selector DNN → Istft → ModulateAm)
// used to allocate every temporary from the global heap — a fresh
// std::vector<float> per Tensor, per spectrogram, per scratch buffer.
// These primitives give each session strand one Arena that is reset at
// every chunk boundary: allocation is a pointer bump, deallocation is
// free, and after warmup the steady-state bench asserts 0 mallocs/chunk
// (bench_runtime_throughput, `alloc` section of BENCH_hotpath.json).
//
// Ownership rules (enforced by convention + tests, see DESIGN.md §5i):
//  - Weights, model cache, and training tensors stay on owning storage.
//    Only per-chunk temporaries live in an arena.
//  - An ArenaScope rewinds its arena on destruction (exception-safe), so
//    arena-backed values must NOT escape the scope that allocated them:
//    copy results into caller-owned storage before the scope ends.
//  - Arenas are single-threaded: one per session strand (or one
//    thread_local per dispatcher for batch assembly), never shared.
//
// This header is intentionally header-only: nec::nn's Tensor consults
// ArenaScope::Current() from its constructors, and nec_nn must not link
// nec_core (the dependency runs the other way).
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <initializer_list>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "common/check.h"

namespace nec::core {

// ------------------------------------------------------------------ Arena

/// Bump allocator over a chain of geometrically-grown blocks. Allocation
/// is a pointer bump; memory is reclaimed only by Rewind/Reset, which keep
/// the blocks for reuse — after a warmup chunk has sized the chain, a
/// steady-state Reset-per-chunk cycle never touches the heap again.
/// Not thread-safe by design: each arena belongs to exactly one strand.
class Arena {
 public:
  static constexpr std::size_t kDefaultAlign = 64;  // cache line
  static constexpr std::size_t kDefaultInitialBytes = std::size_t{1} << 16;

  explicit Arena(std::size_t initial_bytes = kDefaultInitialBytes)
      : initial_bytes_(initial_bytes ? initial_bytes : kDefaultInitialBytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// A bump position; valid until the blocks allocated after it are
  /// rewound past. Obtained from Position(), consumed by Rewind().
  struct Mark {
    std::size_t block = 0;
    std::size_t offset = 0;
  };

  /// Returns `bytes` of storage aligned to `align` (power of two).
  /// Contents are indeterminate. Zero-byte requests return a unique,
  /// aligned, dereferenceable-for-zero-length pointer.
  void* Allocate(std::size_t bytes, std::size_t align = kDefaultAlign) {
    NEC_DCHECK_MSG((align & (align - 1)) == 0, "alignment must be a power of two");
    while (true) {
      if (active_ < blocks_.size()) {
        Block& b = blocks_[active_];
        // Align the address, not the offset: operator new[] only guarantees
        // __STDCPP_DEFAULT_NEW_ALIGNMENT__ for the block base, so an aligned
        // offset into a misaligned base would still hand out misaligned bytes.
        const auto base = reinterpret_cast<std::uintptr_t>(b.data.get());
        const std::size_t aligned = AlignUp(base + offset_, align) - base;
        if (aligned + bytes <= b.size) {
          offset_ = aligned + bytes;
          bytes_allocated_ += bytes;
          high_water_ = std::max(high_water_, InUse());
          return b.data.get() + aligned;
        }
        // Current block exhausted for this request: advance. The skipped
        // tail is wasted until the next Rewind, which is fine — block
        // sizes grow geometrically so waste is bounded by a constant
        // fraction of capacity.
        ++active_;
        offset_ = 0;
        continue;
      }
      // No block fits: grow the chain. Doubling from the last block keeps
      // the total block count logarithmic in peak usage, so steady-state
      // chunks replay entirely inside existing blocks.
      const std::size_t prev = blocks_.empty() ? initial_bytes_ / 2 : blocks_.back().size;
      const std::size_t want = std::max(prev * 2, bytes + align);
      blocks_.push_back(Block{std::make_unique<std::byte[]>(want), want});
      ++grow_count_;
    }
  }

  /// Typed array allocation (no construction — T must be trivial).
  template <typename T>
  T* AllocateArray(std::size_t n) {
    static_assert(std::is_trivially_destructible_v<T>);
    return static_cast<T*>(Allocate(n * sizeof(T), std::max(alignof(T), std::size_t{16})));
  }

  Mark Position() const { return Mark{active_, offset_}; }

  /// Returns the bump pointer to `mark`. Storage allocated after the mark
  /// is reusable immediately; nothing is freed. Rewinding to a mark taken
  /// on another arena (or already rewound past) is undefined — DCHECK'd.
  void Rewind(Mark mark) {
    NEC_DCHECK_MSG(mark.block < blocks_.size() || (mark.block == 0 && mark.offset == 0),
                   "Arena::Rewind to a position this arena never reached");
    active_ = mark.block;
    offset_ = mark.offset;
  }

  /// Rewind-to-empty: every block is retained, all storage reusable.
  void Reset() { Rewind(Mark{0, 0}); }

  /// Bytes currently handed out (bump positions, not request sums).
  std::size_t InUse() const {
    std::size_t n = 0;
    for (std::size_t i = 0; i < active_ && i < blocks_.size(); ++i) n += blocks_[i].size;
    return n + offset_;
  }
  /// Total bytes owned across all blocks.
  std::size_t Capacity() const {
    std::size_t n = 0;
    for (const Block& b : blocks_) n += b.size;
    return n;
  }
  std::size_t block_count() const { return blocks_.size(); }
  std::size_t high_water_bytes() const { return high_water_; }
  /// Times the chain grew (a steady-state strand stops growing after
  /// warmup; the bench asserts this indirectly via the malloc counter).
  std::uint64_t grow_count() const { return grow_count_; }
  std::uint64_t bytes_allocated() const { return bytes_allocated_; }

 private:
  struct Block {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
  };

  static std::size_t AlignUp(std::size_t v, std::size_t a) { return (v + a - 1) & ~(a - 1); }

  std::size_t initial_bytes_;
  std::vector<Block> blocks_;
  std::size_t active_ = 0;   // block currently bumping
  std::size_t offset_ = 0;   // within blocks_[active_]
  std::size_t high_water_ = 0;
  std::uint64_t grow_count_ = 0;
  std::uint64_t bytes_allocated_ = 0;
};

// ------------------------------------------------------------- ArenaScope

/// RAII chunk boundary: publishes `arena` as the thread's ambient arena
/// (consulted by nn::Tensor's constructors) and rewinds it to the entry
/// position on destruction — including during exception unwind, so a
/// faulted chunk cannot leak arena space or poison the strand's next
/// chunk. Scopes nest (inner scopes may target the same or a different
/// arena); the previous ambient arena is restored on exit.
class ArenaScope {
 public:
  explicit ArenaScope(Arena& arena)
      : arena_(&arena), previous_(t_current), mark_(arena.Position()) {
    t_current = &arena;
  }

  ~ArenaScope() {
    arena_->Rewind(mark_);
    t_current = previous_;
  }

  ArenaScope(const ArenaScope&) = delete;
  ArenaScope& operator=(const ArenaScope&) = delete;

  /// The ambient arena of the calling thread, or nullptr when no scope is
  /// active (allocations fall back to owning heap storage).
  static Arena* Current() { return t_current; }

 private:
  inline static thread_local Arena* t_current = nullptr;

  Arena* arena_;
  Arena* previous_;
  Arena::Mark mark_;
};

// ------------------------------------------------------------------- Pool

/// Size-classed recycler for float buffers whose lifetime crosses strand
/// or thread boundaries (chunk waveforms travelling through the batcher,
/// session output swap space) — storage an Arena cannot serve because no
/// single scope outlives it. Buffers are binned by power-of-two capacity;
/// Acquire prefers a recycled buffer and does NOT zero reused contents
/// (consumers overwrite fully — test-enforced), Release returns it to the
/// bin or drops it when the bin is full. Thread-safe.
class Pool {
 public:
  static constexpr std::size_t kNumClasses = 32;

  explicit Pool(std::size_t max_per_class = 16) : max_per_class_(max_per_class) {}

  Pool(const Pool&) = delete;
  Pool& operator=(const Pool&) = delete;

  /// A buffer with size() == n and capacity from n's size class. Reused
  /// elements keep their previous (stale) contents; only growth beyond a
  /// recycled buffer's old size is value-initialized by the resize.
  std::vector<float> Acquire(std::size_t n) {
    std::vector<float> buf;
    const std::size_t cls = ClassOf(n);
    {
      std::lock_guard lock(mu_);
      ++acquires_;
      auto& bin = bins_[cls];
      if (!bin.empty()) {
        ++hits_;
        buf = std::move(bin.back());
        bin.pop_back();
      }
    }
    if (buf.capacity() < n) buf.reserve(ClassCapacity(cls));
    buf.resize(n);
    return buf;
  }

  /// Recycles `buf`'s storage. The buffer is binned by its capacity (it
  /// can serve any future request up to that size class).
  void Release(std::vector<float>&& buf) {
    if (buf.capacity() == 0) return;
    const std::size_t cls = ClassOf(buf.capacity());
    const std::size_t keep_cls = (ClassCapacity(cls) <= buf.capacity()) ? cls : cls - 1;
    std::lock_guard lock(mu_);
    ++releases_;
    auto& bin = bins_[keep_cls];
    if (bin.size() < max_per_class_) {
      bin.push_back(std::move(buf));
    } else {
      ++discards_;
    }
  }

  struct Stats {
    std::uint64_t acquires = 0;
    std::uint64_t hits = 0;
    std::uint64_t releases = 0;
    std::uint64_t discards = 0;
  };
  Stats stats() const {
    std::lock_guard lock(mu_);
    return Stats{acquires_, hits_, releases_, discards_};
  }

 private:
  /// Smallest class whose capacity holds n (ceil log2, min 256 floats —
  /// tiny buffers share one bin so short frames don't fragment).
  static std::size_t ClassOf(std::size_t n) {
    std::size_t cls = 8;  // 2^8 = 256 floats minimum class
    while (ClassCapacity(cls) < n) ++cls;
    NEC_DCHECK(cls < kNumClasses);
    return cls;
  }
  static std::size_t ClassCapacity(std::size_t cls) { return std::size_t{1} << cls; }

  mutable std::mutex mu_;
  std::size_t max_per_class_;
  std::array<std::vector<std::vector<float>>, kNumClasses> bins_;
  std::uint64_t acquires_ = 0, hits_ = 0, releases_ = 0, discards_ = 0;
};

/// Process-wide pool for cross-strand buffer recycling.
inline Pool& GlobalPool() {
  static Pool pool;
  return pool;
}

// ------------------------------------------------------------------ Shape

/// Inline tensor shape: up to rank 4 (the deepest the selector uses),
/// stored without heap storage so constructing a Tensor never mallocs for
/// its metadata. Replaces the old std::vector<std::size_t> shape.
class Shape {
 public:
  static constexpr std::size_t kMaxRank = 4;

  Shape() = default;
  Shape(std::initializer_list<std::size_t> dims) { Assign(dims.begin(), dims.size()); }
  Shape(const std::vector<std::size_t>& dims) { Assign(dims.data(), dims.size()); }
  Shape(const std::size_t* dims, std::size_t rank) { Assign(dims, rank); }

  std::size_t rank() const { return rank_; }
  std::size_t size() const { return rank_; }  // container-style (== rank)
  bool empty() const { return rank_ == 0; }
  std::size_t operator[](std::size_t i) const {
    NEC_DCHECK(i < rank_);
    return dims_[i];
  }
  std::size_t numel() const {
    std::size_t n = 1;
    for (std::size_t i = 0; i < rank_; ++i) n *= dims_[i];
    return rank_ == 0 ? 0 : n;
  }

  const std::size_t* begin() const { return dims_.data(); }
  const std::size_t* end() const { return dims_.data() + rank_; }

  friend bool operator==(const Shape& a, const Shape& b) {
    if (a.rank_ != b.rank_) return false;
    for (std::size_t i = 0; i < a.rank_; ++i)
      if (a.dims_[i] != b.dims_[i]) return false;
    return true;
  }
  friend bool operator!=(const Shape& a, const Shape& b) { return !(a == b); }

 private:
  void Assign(const std::size_t* dims, std::size_t rank) {
    NEC_CHECK_MSG(rank <= kMaxRank, "Shape rank " << rank << " exceeds kMaxRank");
    rank_ = rank;
    for (std::size_t i = 0; i < rank; ++i) dims_[i] = dims[i];
  }

  std::array<std::size_t, kMaxRank> dims_{};
  std::size_t rank_ = 0;
};

// ------------------------------------------------------------- TensorView

/// Non-owning shaped slice over float storage (arena blocks, a batched
/// tensor's rows, pool buffers). Used by the batch-assembly paths to
/// gather/scatter per-item data without intermediate copies. The view is
/// invalidated by whatever invalidates its storage: arena Rewind/Reset
/// past the allocation, Release of the pooled buffer, or destruction /
/// reallocation of the viewed tensor (DESIGN.md §5i).
class TensorView {
 public:
  TensorView() = default;
  TensorView(float* data, Shape shape) : data_(data), shape_(shape) {}

  const Shape& shape() const { return shape_; }
  std::size_t rank() const { return shape_.rank(); }
  std::size_t dim(std::size_t i) const { return shape_[i]; }
  std::size_t numel() const { return shape_.numel(); }
  bool empty() const { return numel() == 0; }

  float* data() const { return data_; }

  float& operator[](std::size_t i) const {
    NEC_DCHECK_MSG(i < numel(), "TensorView[" << i << "] out of " << numel());
    return data_[i];
  }

  /// 2-D accessor (rank must be 2); rank/bounds NEC_DCHECK'd like Tensor.
  float& At(std::size_t r, std::size_t c) const {
    NEC_DCHECK_MSG(rank() == 2, "TensorView::At on rank-" << rank());
    NEC_DCHECK_MSG(r < shape_[0] && c < shape_[1],
                   "TensorView::At(" << r << ", " << c << ") out of ("
                                     << shape_[0] << ", " << shape_[1] << ")");
    return data_[r * shape_[1] + c];
  }

  /// 3-D accessor (rank must be 3): (c, h, w).
  float& At3(std::size_t c, std::size_t h, std::size_t w) const {
    NEC_DCHECK_MSG(rank() == 3, "TensorView::At3 on rank-" << rank());
    NEC_DCHECK_MSG(c < shape_[0] && h < shape_[1] && w < shape_[2],
                   "TensorView::At3(" << c << ", " << h << ", " << w
                                      << ") out of (" << shape_[0] << ", "
                                      << shape_[1] << ", " << shape_[2] << ")");
    return data_[(c * shape_[1] + h) * shape_[2] + w];
  }

  /// 4-D accessor (rank must be 4): (b, c, h, w).
  float& At4(std::size_t b, std::size_t c, std::size_t h, std::size_t w) const {
    NEC_DCHECK_MSG(rank() == 4, "TensorView::At4 on rank-" << rank());
    NEC_DCHECK_MSG(b < shape_[0] && c < shape_[1] && h < shape_[2] && w < shape_[3],
                   "TensorView::At4(" << b << ", " << c << ", " << h << ", " << w
                                      << ") out of (" << shape_[0] << ", " << shape_[1]
                                      << ", " << shape_[2] << ", " << shape_[3] << ")");
    return data_[((b * shape_[1] + c) * shape_[2] + h) * shape_[3] + w];
  }

  /// Sub-view fixing the leading index: a (B, ...) view yields the
  /// rank-(R-1) view of item `i` — the gather/scatter slice for batch
  /// assembly. Aliasing: shares storage with this view.
  TensorView Sub(std::size_t i) const {
    NEC_DCHECK_MSG(rank() >= 2, "TensorView::Sub on rank-" << rank());
    NEC_DCHECK_MSG(i < shape_[0], "TensorView::Sub(" << i << ") out of " << shape_[0]);
    std::array<std::size_t, Shape::kMaxRank> rest{};
    for (std::size_t d = 1; d < rank(); ++d) rest[d - 1] = shape_[d];
    const Shape sub(rest.data(), rank() - 1);
    return TensorView(data_ + i * sub.numel(), sub);
  }

 private:
  float* data_ = nullptr;
  Shape shape_;
};

}  // namespace nec::core
