#include "core/trainer.h"

#include <cmath>

#include "common/check.h"
#include "common/rng.h"
#include "nn/loss.h"
#include "nn/optimizer.h"
#include "obs/log.h"
#include "synth/dataset.h"

namespace nec::core {
namespace {

nn::Tensor SpectrogramTensor(const dsp::Spectrogram& spec, float gain) {
  nn::Tensor t({spec.num_frames(), spec.num_bins()});
  for (std::size_t i = 0; i < t.numel(); ++i) {
    t[i] = spec.mag()[i] * gain;
  }
  return t;
}

float SpecRms(const dsp::Spectrogram& spec) {
  double acc = 0.0;
  for (float m : spec.mag()) acc += static_cast<double>(m) * m;
  return static_cast<float>(
      std::sqrt(acc / std::max<std::size_t>(1, spec.mag().size())));
}

}  // namespace

SelectorTrainer::SelectorTrainer(const NecConfig& config,
                                 const encoder::SpeakerEncoder& encoder,
                                 TrainerOptions options)
    : config_(config), encoder_(encoder), options_(options) {
  NEC_CHECK(options_.steps >= 1);
  NEC_CHECK_MSG(encoder_.dim() == config_.embedding_dim,
                "encoder dim " << encoder_.dim()
                               << " != config embedding dim "
                               << config_.embedding_dim);
  BuildDataset();
}

void SelectorTrainer::BuildDataset() {
  Rng rng(options_.seed ^ 0x5851F42D4C957F2DULL);
  synth::DatasetBuilder builder(
      {.sample_rate = config_.sample_rate, .duration_s = options_.crop_s});
  const auto speakers = synth::DatasetBuilder::MakeSpeakers(
      options_.num_speakers + 6, options_.seed * 97 + 1);

  // Noise scenarios cycle through the Table I classes.
  const synth::Scenario noise_scenarios[] = {
      synth::Scenario::kBabble, synth::Scenario::kFactory,
      synth::Scenario::kVehicle};

  samples_.reserve(options_.num_speakers * options_.instances_per_speaker);
  for (std::size_t s = 0; s < options_.num_speakers; ++s) {
    const synth::SpeakerProfile& target = speakers[s];
    const auto refs = builder.MakeReferenceAudios(target, 3, rng.NextSeed());
    const std::vector<float> dvec = encoder_.EmbedReferences(refs);

    for (std::size_t k = 0; k < options_.instances_per_speaker; ++k) {
      synth::MixInstance inst;
      if (rng.Chance(options_.p_joint)) {
        // Interferer drawn from the reserve pool (never a training target).
        const synth::SpeakerProfile& other =
            speakers[options_.num_speakers +
                     static_cast<std::size_t>(rng.UniformInt(0, 5))];
        inst = builder.MakeInstance(target,
                                    synth::Scenario::kJointConversation,
                                    rng.NextSeed(), &other);
      } else {
        inst = builder.MakeInstance(
            target, noise_scenarios[k % std::size(noise_scenarios)],
            rng.NextSeed());
      }

      const dsp::Spectrogram mixed = dsp::Stft(inst.mixed, config_.stft);
      const dsp::Spectrogram bk = dsp::Stft(inst.background, config_.stft);
      const float rms = SpecRms(mixed);
      const float gain = rms > 1e-9f ? 1.0f / rms : 1.0f;

      Sample sample{SpectrogramTensor(mixed, gain),
                    SpectrogramTensor(bk, gain), dvec};
      samples_.push_back(std::move(sample));
    }
  }
  NEC_CHECK(!samples_.empty());
}

float SelectorTrainer::ZeroShadowLoss() const {
  double acc = 0.0;
  for (const Sample& s : samples_) {
    acc += nn::MseLoss(s.mixed, s.target).loss;
  }
  return static_cast<float>(acc / samples_.size());
}

float SelectorTrainer::Train(Selector& selector) {
  nn::Adam::Options opt;
  opt.lr = options_.lr;
  opt.grad_clip = options_.grad_clip;
  nn::Adam adam(selector.Params(), opt);

  Rng rng(options_.seed * 0x2545F4914F6CDD1DULL + 3);
  const std::size_t tail_begin = options_.steps - options_.steps / 10 - 1;
  double tail_loss = 0.0;
  std::size_t tail_count = 0;

  for (std::size_t step = 0; step < options_.steps; ++step) {
    // Step learning-rate decay: x0.5 at 50% and again at 75% of training.
    if (step == options_.steps / 2 || step == options_.steps * 3 / 4) {
      adam.options().lr *= 0.5f;
    }
    const std::size_t batch = std::max<std::size_t>(1, options_.batch_size);
    float step_loss = 0.0f;
    for (std::size_t b = 0; b < batch; ++b) {
      const Sample& s = samples_[static_cast<std::size_t>(
          rng.UniformInt(0, static_cast<int>(samples_.size()) - 1))];

      nn::Tensor shadow = selector.Forward(s.mixed, s.dvector, true);
      // S_record = S_mixed + S_shadow (Eq. 5), loss vs S_bk (Eq. 6).
      nn::Tensor record = shadow;
      record.Add(s.mixed);
      nn::MseResult mse = nn::MseLoss(record, s.target);
      // dLoss/dShadow == dLoss/dRecord; average over the batch.
      if (batch > 1) mse.grad.Scale(1.0f / static_cast<float>(batch));
      selector.Backward(mse.grad);
      step_loss += mse.loss / static_cast<float>(batch);
    }
    adam.Step();

    if (step >= tail_begin) {
      tail_loss += step_loss;
      ++tail_count;
    }
    if (options_.on_step) options_.on_step(step, step_loss);
    if (step % 20 == 0) {
      NEC_LOG("trainer",
              options_.verbose ? obs::LogLevel::kInfo
                               : obs::LogLevel::kDebug,
              "selector step %zu/%zu loss %.5f", step, options_.steps,
              static_cast<double>(step_loss));
    }
  }
  return static_cast<float>(tail_loss / std::max<std::size_t>(1, tail_count));
}

}  // namespace nec::core
