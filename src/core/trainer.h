// Selector training (§IV-B2, Eq. 6).
//
// The training stage crafts mixed audios containing the target speaker's
// voice plus interference (another speaker, or NOISEX-style noise), and
// optimizes
//
//     Selector* = argmin || S_record - S_bk ||^2 ,
//     S_record  = S_mixed + S_shadow(Selector)
//
// exactly as the paper's "microphone-aware end-to-end" pipeline: the
// superposition of shadow and mixed spectrograms inside the loss imitates
// the over-the-air wave superposition at the microphone (valid by the
// linearity of the Fourier transform, Eq. 4/5).
//
// Training data comes from synth::DatasetBuilder; the target speaker's
// d-vector is produced by the configured encoder from reference clips that
// are disjoint from the training mixtures, mirroring the paper's one-fits-
// all enrollment (3 clips of 3 s).
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "core/selector.h"
#include "encoder/encoder.h"

namespace nec::core {

struct TrainerOptions {
  std::size_t steps = 1400;
  std::size_t num_speakers = 12;      ///< training target speakers
  std::size_t instances_per_speaker = 10;
  double crop_s = 1.0;                ///< training clip duration
  double p_joint = 0.5;               ///< joint-conversation vs noise mix
  /// Gradients are averaged over this many samples per optimizer step
  /// (plain SGD-style accumulation; smooths the batch-1 noise at the cost
  /// of proportionally more compute per step).
  std::size_t batch_size = 1;
  float lr = 2e-3f;
  float grad_clip = 5.0f;
  std::uint64_t seed = 9;
  bool verbose = false;
  /// Optional per-step progress callback (step, loss).
  std::function<void(std::size_t, float)> on_step;
};

class SelectorTrainer {
 public:
  SelectorTrainer(const NecConfig& config,
                  const encoder::SpeakerEncoder& encoder,
                  TrainerOptions options = {});

  /// Trains `selector` in place; returns the mean loss over the last 10%
  /// of steps.
  float Train(Selector& selector);

  /// Baseline loss of a zero shadow (||S_mixed - S_bk||^2 on the same
  /// data), for judging how much of the target the selector removes.
  float ZeroShadowLoss() const;

 private:
  struct Sample {
    nn::Tensor mixed;    ///< normalized (T, F) input
    nn::Tensor target;   ///< normalized (T, F) background truth
    std::vector<float> dvector;
  };

  void BuildDataset();

  NecConfig config_;
  const encoder::SpeakerEncoder& encoder_;
  TrainerOptions options_;
  std::vector<Sample> samples_;
};

}  // namespace nec::core
