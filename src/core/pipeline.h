// The end-to-end NEC pipeline (Fig. 6): enrollment → monitoring → shadow
// generation → ultrasonic broadcast.
#pragma once

#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "audio/waveform.h"
#include "channel/modulation.h"
#include "core/config.h"
#include "core/las_selector.h"
#include "core/memory.h"
#include "core/selector.h"
#include "dsp/stft.h"
#include "encoder/encoder.h"

namespace nec::core {

struct PipelineOptions {
  channel::ModulationConfig modulation;  ///< carrier f_c, alpha, air rate
};

/// Per-session scratch for the per-chunk shadow hot path (DESIGN.md §5i).
/// Owns everything GenerateShadowInto reuses across chunks: the STFT/ISTFT
/// workspace, the chunk spectrogram, the shadow magnitude surface, and the
/// bump arena the selector's intermediate tensors live in (rewound at every
/// chunk boundary by the ArenaScope inside GenerateShadowInto). After the
/// first chunk of a stream every buffer is at steady-state size, so the
/// per-chunk path performs zero heap allocations. Single-threaded: each
/// streaming session / runtime strand owns one.
struct ShadowScratch {
  dsp::StftWorkspace stft;
  dsp::Spectrogram spec;
  std::vector<float> shadow_mag;
  Arena arena;
};

/// Which shadow generator the pipeline runs (neural is the paper system;
/// the LAS mask is the DSP ablation).
enum class SelectorKind { kNeural, kLasMask };

class NecPipeline {
 public:
  /// Takes ownership of a trained selector and an encoder.
  NecPipeline(Selector selector,
              std::shared_ptr<const encoder::SpeakerEncoder> encoder,
              PipelineOptions options = {});

  /// Shares an immutable trained selector with other pipelines. This is the
  /// nec::runtime path: every concurrent session holds the same weight set
  /// (inference is const — see Selector::Infer); only enrollment state and
  /// the LAS ablation profile are per-pipeline.
  NecPipeline(std::shared_ptr<const Selector> selector,
              std::shared_ptr<const encoder::SpeakerEncoder> encoder,
              PipelineOptions options = {});

  /// Enrolls the target speaker from reference clips (paper: 3 clips of
  /// 3 s). Computes the d-vector and the LAS profile for the ablation
  /// selector.
  void Enroll(std::span<const audio::Waveform> references);

  /// Generates the baseband shadow waveform for a monitored mixed clip:
  /// STFT → selector → signed shadow magnitudes → inverse STFT with the
  /// mixed signal's phase (§IV-C1). The returned wave has the property
  /// x_mixed + x_shadow ≈ x_background at the monitor's scale. Const:
  /// concurrent callers are safe once enrollment has happened.
  ///
  /// `ws` (optional) reuses STFT/ISTFT scratch between calls — the
  /// streaming hot path passes a per-session workspace so shadow
  /// generation stops allocating per frame. A workspace must not be shared
  /// across threads.
  audio::Waveform GenerateShadow(const audio::Waveform& mixed,
                                 SelectorKind kind = SelectorKind::kNeural,
                                 dsp::StftWorkspace* ws = nullptr) const;

  /// Zero-allocation twin of GenerateShadow: every intermediate lives in
  /// `scratch` (spectrogram, shadow surface, selector tensors via the
  /// scratch arena) and the result is written into `out` in place.
  /// Bit-identical to GenerateShadow — arena-backed tensors zero-fill
  /// exactly like heap-backed ones, and the dsp Into-variants are the
  /// implementations behind the value-returning forms. With a warm scratch
  /// (one chunk of this shape already seen) the call performs no heap
  /// allocation; bench_runtime_throughput asserts this at 0 mallocs/chunk.
  void GenerateShadowInto(const audio::Waveform& mixed, SelectorKind kind,
                          ShadowScratch& scratch, audio::Waveform& out) const;

  /// GenerateShadow + ultrasonic AM modulation (Broadcast module). The
  /// result is at the air sample rate with unit peak; emitted power is a
  /// scene parameter.
  audio::Waveform GenerateModulatedShadow(
      const audio::Waveform& mixed,
      SelectorKind kind = SelectorKind::kNeural) const;

  /// The ideal shadow computed from ground-truth stems (oracle): exactly
  /// S_bk - S_mixed. Upper-bounds what any selector can achieve; used by
  /// tests and the offset study (Fig. 9), which the paper also runs with
  /// known signals.
  audio::Waveform OracleShadow(const audio::Waveform& mixed,
                               const audio::Waveform& background) const;

  bool enrolled() const { return dvector_.has_value(); }
  const std::vector<float>& dvector() const;

  const NecConfig& config() const { return selector_->config(); }
  const PipelineOptions& options() const { return options_; }
  const Selector& selector() const { return *selector_; }
  const encoder::SpeakerEncoder& encoder() const { return *encoder_; }

  /// Shared handles, for fanning more pipelines out of the same weights.
  std::shared_ptr<const Selector> shared_selector() const {
    return selector_;
  }
  std::shared_ptr<const encoder::SpeakerEncoder> shared_encoder() const {
    return encoder_;
  }

 private:
  std::shared_ptr<const Selector> selector_;
  LasSelector las_selector_;
  std::shared_ptr<const encoder::SpeakerEncoder> encoder_;
  PipelineOptions options_;
  std::optional<std::vector<float>> dvector_;
};

/// One item of a batched shadow-generation call (see GenerateShadowBatch).
struct ShadowBatchRequest {
  const NecPipeline* pipeline = nullptr;   ///< enrolled pipeline
  const audio::Waveform* mixed = nullptr;  ///< same length for every item
  dsp::StftWorkspace* ws = nullptr;        ///< optional per-item scratch
};

/// Batched GenerateShadow over the NEURAL selector: per-item STFT, then one
/// Selector::ComputeShadowBatch across all items, then per-item inverse
/// STFT. Every pipeline in the batch must share the same selector instance
/// (shared_selector()) and every mixed chunk the same length / sample rate.
/// Bit-identical, per item, to
/// `req.pipeline->GenerateShadow(*req.mixed, SelectorKind::kNeural, req.ws)`
/// — the property the runtime micro-batcher (runtime/batcher.h) relies on
/// to coalesce sessions without changing their emitted shadows.
std::vector<audio::Waveform> GenerateShadowBatch(
    std::span<const ShadowBatchRequest> requests);

}  // namespace nec::core
