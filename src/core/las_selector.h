// Deterministic LAS-mask selector — DSP-only ablation baseline.
//
// Where the neural Selector learns the mapping, this baseline directly uses
// §III: the target speaker's LAS says which frequency bins the target
// occupies; frames whose spectrum correlates with the target LAS are
// attributed to the target. The shadow is a Wiener-style negative mask:
//
//     S_shadow(t,f) = -activity(t) * share(f) * S_mixed(t,f)
//
// with share(f) = LAS_t(f)^2 / (LAS_t(f)^2 + c) and activity(t) the cosine
// similarity between frame t's spectrum and the target LAS, rectified.
// Used by bench_ablation_selector to quantify what the DNN adds.
#pragma once

#include <span>
#include <vector>

#include "audio/waveform.h"
#include "core/config.h"
#include "dsp/stft.h"

namespace nec::core {

class LasSelector {
 public:
  explicit LasSelector(const NecConfig& config);

  /// Enrolls the target from reference clips (computes the reference LAS
  /// at the pipeline's spectrogram resolution).
  void Enroll(std::span<const audio::Waveform> references);

  /// Shadow magnitude surface for a mixed spectrogram; same contract as
  /// Selector::ComputeShadow.
  std::vector<float> ComputeShadow(const dsp::Spectrogram& spec) const;

  /// ComputeShadow into a caller-owned surface (resized in place); same
  /// contract as Selector::ComputeShadowInto. Allocation-free once warm —
  /// the per-bin share profile lives in thread_local scratch (the repo's
  /// Conv2D idiom), so the LAS ablation rides the same zero-malloc chunk
  /// path as the neural selector.
  void ComputeShadowInto(const dsp::Spectrogram& spec,
                         std::vector<float>& out) const;

  bool enrolled() const { return !reference_las_.empty(); }

 private:
  NecConfig config_;
  std::vector<float> reference_las_;  ///< per-bin target profile
};

}  // namespace nec::core
