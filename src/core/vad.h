// Target-activity gating for the ultrasonic emitter.
//
// A deployed NEC device should not broadcast ultrasound while its wearer
// is silent: it wastes emitter power, stresses the §VII feedback budget,
// and (per Table IV) needlessly sweeps other recorders. This detector
// answers "is the enrolled target probably speaking in this chunk?" from
// the same LAS timbre evidence the selector uses: chunk energy above an
// absolute floor AND the chunk's spectral shape correlating with the
// target's enrollment profile.
#pragma once

#include <span>
#include <vector>

#include "audio/waveform.h"
#include "core/config.h"

namespace nec::core {

struct VadOptions {
  /// Absolute RMS below which the chunk counts as silence.
  double energy_floor_rms = 1e-4;
  /// Cosine similarity (chunk LAS vs enrollment LAS) above which the
  /// chunk is attributed to the target.
  double similarity_threshold = 0.75;
};

class TargetActivityDetector {
 public:
  explicit TargetActivityDetector(const NecConfig& config,
                                  VadOptions options = {});

  /// Learns the target's spectral profile from reference clips.
  void Enroll(std::span<const audio::Waveform> references);

  /// Cosine similarity of the chunk's LAS against the enrollment profile
  /// (0 when the chunk is below the energy floor).
  double ActivityScore(const audio::Waveform& chunk) const;

  /// True when the target is probably speaking in `chunk`.
  bool IsTargetActive(const audio::Waveform& chunk) const;

  bool enrolled() const { return !profile_.empty(); }

 private:
  NecConfig config_;
  VadOptions options_;
  std::vector<float> profile_;  ///< unit-norm enrollment LAS
};

}  // namespace nec::core
