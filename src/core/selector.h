// The NEC Selector DNN (§IV-B1, Fig. 7).
//
// Architecture, following the paper exactly (widths parameterized by
// NecConfig):
//
//   input: mixed magnitude spectrogram, frame-major (T, F)
//     Conv 1x7  (frequency-direction "flat" filters — each covers the
//               bandwidth of an individual formant)           + ReLU
//     Conv 7x1  (time direction, phoneme-scale context)       + ReLU
//     Conv 5x5 dilation (1,1)                                 + ReLU
//     Conv 5x5 dilation (2,1)                                 + ReLU
//     Conv 5x5 dilation (4,1)                                 + ReLU
//     Conv 5x5 dilation (8,1)  (85–610 ms effective context)  + ReLU
//     Conv 5x5 → 2 channels → reshape to (T, 2F)
//     concat d-vector at every frame → (T, 2F + E)
//     Linear → H + ReLU
//     Linear → F      (linear output: the shadow is signed)
//
// 6 CNN layers + 2 FC layers total, no LSTM — the paper's efficiency
// argument against VoiceFilter.
//
// The network is trained with the Eq. 6 objective (see trainer.h):
//     argmin || (S_mixed + S_shadow) - S_bk ||^2
// so Forward() returns the shadow spectrogram to superpose on the mix.
//
// Input normalization: spectrogram cells are scaled by 1/rms(S_mixed)
// before the network and the shadow is scaled back after — superposition
// is linear, so this per-instance gain cancels out exactly.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/config.h"
#include "dsp/stft.h"
#include "nn/layers.h"

namespace nec::core {

class Selector {
 public:
  Selector(const NecConfig& config, std::uint64_t init_seed = 11);

  /// Runs the selector on a (T, F) magnitude tensor plus the speaker
  /// embedding; returns the (T, F) shadow tensor. Caches activations for
  /// Backward when `training` is true. Mutates layer caches — training /
  /// single-thread use only (see nn/layers.h thread-safety contract).
  nn::Tensor Forward(const nn::Tensor& mixed_mag,
                     const std::vector<float>& dvector, bool training);

  /// Cache-free, bit-identical twin of Forward: writes no member state, so
  /// any number of threads may run Infer concurrently on one shared trained
  /// Selector (nec::runtime sessions share weights via
  /// shared_ptr<const Selector>). Kept in lockstep with Forward — change
  /// both together.
  nn::Tensor Infer(const nn::Tensor& mixed_mag,
                   const std::vector<float>& dvector) const;

  /// Batched Infer: stacks B same-shaped (T, F) magnitude tensors with
  /// their d-vectors into one (B, ...) forward pass through the layers'
  /// InferBatch path and splits the B shadow tensors back out. Guaranteed
  /// bit-identical, per item, to calling Infer on each (mag, dvector) pair
  /// — the runtime micro-batcher (runtime/batcher.h) relies on this to
  /// coalesce concurrent sessions' chunks without changing their emitted
  /// bits. At B = 1 this IS Infer. All items must share (T, F).
  std::vector<nn::Tensor> InferBatch(
      const std::vector<const nn::Tensor*>& mixed_mags,
      const std::vector<const std::vector<float>*>& dvectors) const;

  /// Backprop from dLoss/dShadow; accumulates parameter gradients.
  void Backward(const nn::Tensor& grad_shadow);

  std::vector<nn::Param*> Params();

  /// Convenience: spectrogram in, shadow magnitude surface out (applies the
  /// per-instance gain normalization described above). The result can be
  /// superposed with spec's magnitudes or rendered via IstftWithPhase.
  /// Const (uses Infer) — safe for concurrent sessions on shared weights.
  std::vector<float> ComputeShadow(const dsp::Spectrogram& spec,
                                   const std::vector<float>& dvector) const;

  /// ComputeShadow into a caller-owned surface (resized in place; capacity
  /// reused across chunks). Bit-identical to ComputeShadow. Run under an
  /// ArenaScope the network's intermediate tensors bump-allocate instead of
  /// hitting the heap — the streaming per-chunk path does exactly that.
  void ComputeShadowInto(const dsp::Spectrogram& spec,
                         const std::vector<float>& dvector,
                         std::vector<float>& out) const;

  /// Batched ComputeShadow: applies each item's own gain normalization,
  /// runs one InferBatch, and un-normalizes per item — bit-identical per
  /// item to ComputeShadow. All spectrograms must share (T, F).
  std::vector<std::vector<float>> ComputeShadowBatch(
      const std::vector<const dsp::Spectrogram*>& specs,
      const std::vector<const std::vector<float>*>& dvectors) const;

  void Save(const std::string& path) const;
  static Selector Load(const std::string& path);

  const NecConfig& config() const { return config_; }

  /// MAC count of the most recent Forward (Table II runtime analysis).
  std::size_t LastForwardMacs() const;

 private:
  NecConfig config_;
  // Conv stack (owning pointers so layers can be heterogeneous later).
  std::vector<std::unique_ptr<nn::Conv2D>> convs_;
  std::vector<nn::ReLU> conv_relus_;
  nn::ReLU fc_relu_;
  std::unique_ptr<nn::Linear> fc1_;
  std::unique_ptr<nn::Linear> fc2_;
  nn::Sigmoid mask_sigmoid_;
  nn::Tensor mask_input_cache_;

  // Forward caches for the reshape/concat boundary.
  std::size_t cached_T_ = 0;
};

}  // namespace nec::core
