#include "core/pipeline.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "obs/trace.h"

namespace nec::core {
namespace {

// A NaN/Inf anywhere in the selector output would propagate silently into
// the inverse STFT and modulation, broadcasting garbage instead of a
// shadow. Catch it at the selector boundary with a typed invariant so the
// serving layer (runtime session containment) can fault exactly the one
// session whose chunk poisoned the forward. O(cells) — negligible next to
// the DNN forward itself.
void CheckShadowFinite(const std::vector<float>& shadow_mag,
                       const char* site) {
  for (const float v : shadow_mag) {
    NEC_CHECK_MSG(std::isfinite(v),
                  site << " produced a non-finite shadow magnitude");
  }
}

}  // namespace

NecPipeline::NecPipeline(
    Selector selector,
    std::shared_ptr<const encoder::SpeakerEncoder> encoder,
    PipelineOptions options)
    : NecPipeline(std::make_shared<const Selector>(std::move(selector)),
                  std::move(encoder), options) {}

NecPipeline::NecPipeline(
    std::shared_ptr<const Selector> selector,
    std::shared_ptr<const encoder::SpeakerEncoder> encoder,
    PipelineOptions options)
    : selector_(std::move(selector)),
      las_selector_(selector_->config()),
      encoder_(std::move(encoder)),
      options_(options) {
  NEC_CHECK(selector_ != nullptr);
  NEC_CHECK(encoder_ != nullptr);
  NEC_CHECK_MSG(encoder_->dim() == selector_->config().embedding_dim,
                "encoder/selector embedding dimension mismatch");
}

void NecPipeline::Enroll(std::span<const audio::Waveform> references) {
  dvector_ = encoder_->EmbedReferences(references);
  las_selector_.Enroll(references);
}

const std::vector<float>& NecPipeline::dvector() const {
  NEC_CHECK_MSG(dvector_.has_value(), "pipeline not enrolled");
  return *dvector_;
}

audio::Waveform NecPipeline::GenerateShadow(const audio::Waveform& mixed,
                                            SelectorKind kind,
                                            dsp::StftWorkspace* ws) const {
  NEC_CHECK_MSG(dvector_.has_value(), "enroll a target before GenerateShadow");
  NEC_CHECK_MSG(mixed.sample_rate() == config().sample_rate,
                "monitor audio must be at " << config().sample_rate
                                            << " Hz");
  NEC_TRACE_SPAN("pipeline.generate_shadow");
  dsp::StftWorkspace local_ws;
  dsp::StftWorkspace& w = ws != nullptr ? *ws : local_ws;
  dsp::Spectrogram spec;
  {
    NEC_TRACE_SPAN("dsp.stft");
    spec = dsp::Stft(mixed, config().stft, w);
  }
  std::vector<float> shadow_mag;
  {
    NEC_TRACE_SPAN(kind == SelectorKind::kNeural ? "selector.forward"
                                                 : "selector.las");
    shadow_mag = kind == SelectorKind::kNeural
                     ? selector_->ComputeShadow(spec, *dvector_)
                     : las_selector_.ComputeShadow(spec);
  }
  CheckShadowFinite(shadow_mag, "GenerateShadow selector");
  NEC_TRACE_SPAN("dsp.istft");
  return dsp::IstftWithPhase(shadow_mag, spec, config().stft,
                             config().sample_rate, mixed.size(), w);
}

void NecPipeline::GenerateShadowInto(const audio::Waveform& mixed,
                                     SelectorKind kind,
                                     ShadowScratch& scratch,
                                     audio::Waveform& out) const {
  NEC_CHECK_MSG(dvector_.has_value(), "enroll a target before GenerateShadow");
  NEC_CHECK_MSG(mixed.sample_rate() == config().sample_rate,
                "monitor audio must be at " << config().sample_rate
                                            << " Hz");
  NEC_TRACE_SPAN("pipeline.generate_shadow");
  {
    NEC_TRACE_SPAN("dsp.stft");
    dsp::Stft(mixed, config().stft, scratch.stft, scratch.spec);
  }
  {
    NEC_TRACE_SPAN(kind == SelectorKind::kNeural ? "selector.forward"
                                                 : "selector.las");
    if (kind == SelectorKind::kNeural) {
      // All selector intermediates (input tensor, conv activations, the
      // shadow tensor) bump-allocate from the scratch arena and are
      // reclaimed wholesale when the scope closes; the result escapes into
      // scratch.shadow_mag (caller-owned heap capacity, reused per chunk).
      ArenaScope arena_scope(scratch.arena);
      selector_->ComputeShadowInto(scratch.spec, *dvector_,
                                   scratch.shadow_mag);
    } else {
      las_selector_.ComputeShadowInto(scratch.spec, scratch.shadow_mag);
    }
  }
  CheckShadowFinite(scratch.shadow_mag, "GenerateShadow selector");
  NEC_TRACE_SPAN("dsp.istft");
  dsp::IstftWithPhaseInto(scratch.shadow_mag, scratch.spec, config().stft,
                          config().sample_rate, mixed.size(), scratch.stft,
                          out);
}

audio::Waveform NecPipeline::GenerateModulatedShadow(
    const audio::Waveform& mixed, SelectorKind kind) const {
  return channel::ModulateAm(GenerateShadow(mixed, kind),
                             options_.modulation);
}

std::vector<audio::Waveform> GenerateShadowBatch(
    std::span<const ShadowBatchRequest> requests) {
  const std::size_t B = requests.size();
  NEC_CHECK_MSG(B >= 1, "GenerateShadowBatch on an empty batch");
  const NecPipeline* first = requests[0].pipeline;
  NEC_CHECK(first != nullptr && requests[0].mixed != nullptr);
  const Selector* shared = &first->selector();
  const std::size_t chunk_len = requests[0].mixed->size();

  NEC_TRACE_SPAN_ARG("pipeline.generate_shadow_batch", B);
  std::vector<dsp::StftWorkspace> local_ws;
  local_ws.reserve(B);  // keep pointers stable for items without a ws
  std::vector<dsp::Spectrogram> specs;
  specs.reserve(B);
  std::vector<const dsp::Spectrogram*> spec_ptrs(B);
  std::vector<const std::vector<float>*> dvectors(B);

  for (std::size_t b = 0; b < B; ++b) {
    const ShadowBatchRequest& req = requests[b];
    NEC_CHECK_MSG(req.pipeline != nullptr && req.mixed != nullptr,
                  "GenerateShadowBatch: null item " << b);
    NEC_CHECK_MSG(&req.pipeline->selector() == shared,
                  "GenerateShadowBatch items must share one selector");
    NEC_CHECK_MSG(req.pipeline->enrolled(),
                  "enroll a target before GenerateShadowBatch");
    NEC_CHECK_MSG(req.mixed->size() == chunk_len,
                  "GenerateShadowBatch chunks must be same-length");
    NEC_CHECK_MSG(
        req.mixed->sample_rate() == first->config().sample_rate,
        "monitor audio must be at " << first->config().sample_rate
                                    << " Hz");
    dsp::StftWorkspace& w =
        req.ws != nullptr ? *req.ws : local_ws.emplace_back();
    {
      NEC_TRACE_SPAN("dsp.stft");
      specs.push_back(dsp::Stft(*req.mixed, first->config().stft, w));
    }
    dvectors[b] = &req.pipeline->dvector();
  }
  for (std::size_t b = 0; b < B; ++b) spec_ptrs[b] = &specs[b];

  std::vector<std::vector<float>> shadow_mags;
  {
    NEC_TRACE_SPAN_ARG("selector.forward_batch", B);
    shadow_mags = shared->ComputeShadowBatch(spec_ptrs, dvectors);
  }
  for (const auto& mags : shadow_mags) {
    CheckShadowFinite(mags, "GenerateShadowBatch selector");
  }

  std::vector<audio::Waveform> shadows;
  shadows.reserve(B);
  for (std::size_t b = 0; b < B; ++b) {
    const ShadowBatchRequest& req = requests[b];
    dsp::StftWorkspace local;
    dsp::StftWorkspace& w = req.ws != nullptr ? *req.ws : local;
    NEC_TRACE_SPAN("dsp.istft");
    shadows.push_back(dsp::IstftWithPhase(
        shadow_mags[b], specs[b], first->config().stft,
        first->config().sample_rate, chunk_len, w));
  }
  return shadows;
}

audio::Waveform NecPipeline::OracleShadow(
    const audio::Waveform& mixed, const audio::Waveform& background) const {
  const dsp::Spectrogram mix_spec = dsp::Stft(mixed, config().stft);
  const dsp::Spectrogram bk_spec = dsp::Stft(background, config().stft);
  // Tolerate a trailing length mismatch (stems may carry propagation
  // delays); cells past the shorter signal keep a zero shadow.
  const std::size_t n =
      std::min(mix_spec.mag().size(), bk_spec.mag().size());
  std::vector<float> shadow(mix_spec.mag().size(), 0.0f);
  for (std::size_t i = 0; i < n; ++i) {
    shadow[i] = bk_spec.mag()[i] - mix_spec.mag()[i];
  }
  return dsp::IstftWithPhase(shadow, mix_spec, config().stft,
                             config().sample_rate, mixed.size());
}

}  // namespace nec::core
