#include "core/pipeline.h"

#include <algorithm>

#include "common/check.h"

namespace nec::core {

NecPipeline::NecPipeline(
    Selector selector,
    std::shared_ptr<const encoder::SpeakerEncoder> encoder,
    PipelineOptions options)
    : NecPipeline(std::make_shared<const Selector>(std::move(selector)),
                  std::move(encoder), options) {}

NecPipeline::NecPipeline(
    std::shared_ptr<const Selector> selector,
    std::shared_ptr<const encoder::SpeakerEncoder> encoder,
    PipelineOptions options)
    : selector_(std::move(selector)),
      las_selector_(selector_->config()),
      encoder_(std::move(encoder)),
      options_(options) {
  NEC_CHECK(selector_ != nullptr);
  NEC_CHECK(encoder_ != nullptr);
  NEC_CHECK_MSG(encoder_->dim() == selector_->config().embedding_dim,
                "encoder/selector embedding dimension mismatch");
}

void NecPipeline::Enroll(std::span<const audio::Waveform> references) {
  dvector_ = encoder_->EmbedReferences(references);
  las_selector_.Enroll(references);
}

const std::vector<float>& NecPipeline::dvector() const {
  NEC_CHECK_MSG(dvector_.has_value(), "pipeline not enrolled");
  return *dvector_;
}

audio::Waveform NecPipeline::GenerateShadow(const audio::Waveform& mixed,
                                            SelectorKind kind,
                                            dsp::StftWorkspace* ws) const {
  NEC_CHECK_MSG(dvector_.has_value(), "enroll a target before GenerateShadow");
  NEC_CHECK_MSG(mixed.sample_rate() == config().sample_rate,
                "monitor audio must be at " << config().sample_rate
                                            << " Hz");
  dsp::StftWorkspace local_ws;
  dsp::StftWorkspace& w = ws != nullptr ? *ws : local_ws;
  const dsp::Spectrogram spec = dsp::Stft(mixed, config().stft, w);
  const std::vector<float> shadow_mag =
      kind == SelectorKind::kNeural
          ? selector_->ComputeShadow(spec, *dvector_)
          : las_selector_.ComputeShadow(spec);
  return dsp::IstftWithPhase(shadow_mag, spec, config().stft,
                             config().sample_rate, mixed.size(), w);
}

audio::Waveform NecPipeline::GenerateModulatedShadow(
    const audio::Waveform& mixed, SelectorKind kind) const {
  return channel::ModulateAm(GenerateShadow(mixed, kind),
                             options_.modulation);
}

audio::Waveform NecPipeline::OracleShadow(
    const audio::Waveform& mixed, const audio::Waveform& background) const {
  const dsp::Spectrogram mix_spec = dsp::Stft(mixed, config().stft);
  const dsp::Spectrogram bk_spec = dsp::Stft(background, config().stft);
  // Tolerate a trailing length mismatch (stems may carry propagation
  // delays); cells past the shorter signal keep a zero shadow.
  const std::size_t n =
      std::min(mix_spec.mag().size(), bk_spec.mag().size());
  std::vector<float> shadow(mix_spec.mag().size(), 0.0f);
  for (std::size_t i = 0; i < n; ++i) {
    shadow[i] = bk_spec.mag()[i] - mix_spec.mag()[i];
  }
  return dsp::IstftWithPhase(shadow, mix_spec, config().stft,
                             config().sample_rate, mixed.size());
}

}  // namespace nec::core
