#include "core/vad.h"

#include <cmath>

#include "common/check.h"
#include "encoder/las.h"

namespace nec::core {
namespace {

void Normalize(std::vector<float>& v) {
  double acc = 0.0;
  for (float x : v) acc += static_cast<double>(x) * x;
  const double norm = std::sqrt(acc);
  if (norm > 1e-12) {
    for (float& x : v) x = static_cast<float>(x / norm);
  }
}

}  // namespace

TargetActivityDetector::TargetActivityDetector(const NecConfig& config,
                                               VadOptions options)
    : config_(config), options_(options) {}

void TargetActivityDetector::Enroll(
    std::span<const audio::Waveform> references) {
  NEC_CHECK_MSG(!references.empty(), "VAD enrollment needs clips");
  profile_.clear();
  for (const audio::Waveform& ref : references) {
    std::vector<float> las = encoder::VoicedLas(ref);
    if (profile_.empty()) {
      profile_ = std::move(las);
    } else {
      NEC_CHECK(las.size() == profile_.size());
      for (std::size_t i = 0; i < las.size(); ++i) profile_[i] += las[i];
    }
  }
  Normalize(profile_);
}

double TargetActivityDetector::ActivityScore(
    const audio::Waveform& chunk) const {
  NEC_CHECK_MSG(enrolled(), "VAD used before enrollment");
  if (chunk.empty() || chunk.Rms() < options_.energy_floor_rms) return 0.0;
  std::vector<float> las = encoder::VoicedLas(chunk);
  NEC_CHECK(las.size() == profile_.size());
  Normalize(las);
  double dot = 0.0;
  for (std::size_t i = 0; i < las.size(); ++i) dot += las[i] * profile_[i];
  return dot;
}

bool TargetActivityDetector::IsTargetActive(
    const audio::Waveform& chunk) const {
  return ActivityScore(chunk) >= options_.similarity_threshold;
}

}  // namespace nec::core
