// Real-time chunked processing with per-module latency accounting.
//
// The paper's deployment (§VI-C, Table II) processes the monitored stream
// in 1 s chunks: each chunk goes encoder-conditioned selector → inverse
// STFT → ultrasonic modulation, and the total per-chunk latency must stay
// under the ~300 ms overshadowing tolerance (§IV-C2). StreamingProcessor
// reproduces that loop and reports wall-clock timing per module.
#pragma once

#include <cstdint>
#include <optional>
#include <span>

#include "audio/waveform.h"
#include "core/pipeline.h"

namespace nec::core {

struct ModuleTimings {
  double selector_ms = 0.0;   ///< STFT + DNN + inverse STFT
  double broadcast_ms = 0.0;  ///< ultrasonic modulation
  std::size_t chunks = 0;

  double total_ms() const { return selector_ms + broadcast_ms; }
  double avg_selector_ms() const {
    return chunks ? selector_ms / chunks : 0.0;
  }
  double avg_broadcast_ms() const {
    return chunks ? broadcast_ms / chunks : 0.0;
  }
};

class StreamingProcessor {
 public:
  /// `chunk_s`: chunk duration (paper uses 1 s clips in Table II). The
  /// pipeline is borrowed const — processing never mutates it, so many
  /// processors (one per runtime session) can reference pipelines sharing
  /// one trained weight set.
  StreamingProcessor(const NecPipeline& pipeline, double chunk_s = 1.0,
                     SelectorKind kind = SelectorKind::kNeural);

  /// Feeds monitored samples; returns a modulated shadow chunk whenever a
  /// full chunk has accumulated (at the air sample rate), else nullopt.
  std::optional<audio::Waveform> Push(std::span<const float> samples);

  /// Flushes a final partial chunk (zero-padded) if any samples remain.
  std::optional<audio::Waveform> Flush();

  const ModuleTimings& timings() const { return timings_; }
  std::size_t chunk_samples() const { return chunk_samples_; }

 private:
  audio::Waveform ProcessChunk(audio::Waveform chunk);

  const NecPipeline& pipeline_;
  SelectorKind kind_;
  std::size_t chunk_samples_;
  audio::Waveform buffer_;
  ModuleTimings timings_;
  /// Reused STFT/ISTFT scratch — the per-chunk hot path allocates nothing
  /// after the first chunk. Processors are single-threaded by contract.
  dsp::StftWorkspace stft_ws_;
  /// Stream-wide modulation reference, latched from the first non-silent
  /// shadow chunk when options().modulation.reference_peak is 0. One gain
  /// for the whole stream keeps the emitted power coefficient from
  /// drifting chunk-to-chunk (per-chunk peak normalization boosted quiet
  /// chunks and attenuated loud ones).
  double mod_reference_peak_ = 0.0;
};

}  // namespace nec::core
