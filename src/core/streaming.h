// Real-time chunked processing with per-module latency accounting.
//
// The paper's deployment (§VI-C, Table II) processes the monitored stream
// in 1 s chunks: each chunk goes encoder-conditioned selector → inverse
// STFT → ultrasonic modulation, and the total per-chunk latency must stay
// under the ~300 ms overshadowing tolerance (§IV-C2). StreamingProcessor
// reproduces that loop and reports wall-clock timing per module.
#pragma once

#include <cstdint>
#include <optional>
#include <span>

#include "audio/waveform.h"
#include "core/pipeline.h"

namespace nec::core {

struct ModuleTimings {
  double selector_ms = 0.0;   ///< STFT + DNN + inverse STFT
  double broadcast_ms = 0.0;  ///< ultrasonic modulation
  std::size_t chunks = 0;

  double total_ms() const { return selector_ms + broadcast_ms; }
  double avg_selector_ms() const {
    return chunks ? selector_ms / chunks : 0.0;
  }
  double avg_broadcast_ms() const {
    return chunks ? broadcast_ms / chunks : 0.0;
  }
};

class StreamingProcessor {
 public:
  /// `chunk_s`: chunk duration (paper uses 1 s clips in Table II). The
  /// pipeline is borrowed const — processing never mutates it, so many
  /// processors (one per runtime session) can reference pipelines sharing
  /// one trained weight set.
  StreamingProcessor(const NecPipeline& pipeline, double chunk_s = 1.0,
                     SelectorKind kind = SelectorKind::kNeural);

  /// Feeds monitored samples; returns a modulated shadow chunk whenever a
  /// full chunk has accumulated (at the air sample rate), else nullopt.
  std::optional<audio::Waveform> Push(std::span<const float> samples);

  /// Flushes a final partial chunk (zero-padded) if any samples remain.
  std::optional<audio::Waveform> Flush();

  /// Discards buffered samples and the stream-wide modulation-reference
  /// latch, starting a fresh stream (nec::runtime uses this to return a
  /// faulted session to service). Cumulative timings are kept. Must be
  /// called from the single thread that owns the processor.
  void Reset();

  // --- Decomposed chunk path (runtime micro-batching; see DESIGN.md §5e).
  //
  // Push == BufferSamples + { PopChunk → GenerateShadow →
  // CompleteShadowChunk } per full chunk. The batched runtime splits the
  // loop across threads: the session strand only buffers and pops, the
  // coalescer runs the batched shadow generation and then completes each
  // chunk IN STREAM ORDER — CompleteShadowChunk latches the stream-wide
  // modulation reference from the first non-silent shadow, so completion
  // order is part of the output bits.

  /// Appends monitored samples without processing anything.
  void BufferSamples(std::span<const float> samples);

  /// True when at least chunk_samples() are buffered.
  bool HasFullChunk() const { return buffer_.size() >= chunk_samples_; }

  /// Pops the oldest full chunk (requires HasFullChunk()).
  audio::Waveform PopChunk();

  /// PopChunk into a caller-owned buffer (rebound in place; capacity
  /// reused). The zero-allocation strand path pops every chunk through one
  /// session-owned buffer instead of materializing a fresh Waveform.
  void PopChunkInto(audio::Waveform& chunk);

  /// Second half of the chunk path: stream-reference latch + ultrasonic
  /// modulation + timing accounting for a shadow produced externally
  /// (batched GenerateShadowBatch). `selector_ms` is the shadow-generation
  /// time to attribute to this chunk. Chunks of one processor must be
  /// completed in the order they were popped.
  audio::Waveform CompleteShadowChunk(audio::Waveform shadow,
                                      double selector_ms);

  /// CompleteShadowChunk into a caller-owned buffer. Reuses this
  /// processor's cached modulation resampler plan, so a warm call performs
  /// no allocation; bit-identical to CompleteShadowChunk (the plan caches
  /// the same FIR taps the plan-free modulator designs per call).
  void CompleteShadowChunkInto(const audio::Waveform& shadow,
                               double selector_ms, audio::Waveform& out);

  /// Full zero-allocation chunk path: GenerateShadowInto through this
  /// processor's ShadowScratch, then CompleteShadowChunkInto. Bit-identical
  /// to Push-ing the same chunk; `chunk` must be exactly chunk_samples()
  /// long.
  void ProcessChunkInto(const audio::Waveform& chunk, audio::Waveform& out);

  // --- Stream-state export/restore (fleet session migration; §5h).
  //
  // The complete mid-stream computational state is the buffered
  // partial-chunk tail plus the modulation-reference latch: restoring
  // both onto a fresh processor (same weights, same options) makes its
  // future output bit-identical to the original continuing.

  /// Buffered samples that have not yet formed a full chunk.
  std::span<const float> buffered_samples() const {
    return buffer_.samples();
  }

  /// The latched stream-wide modulation reference (0.0 = not latched).
  double modulation_reference_peak() const { return mod_reference_peak_; }

  /// Installs migrated stream state. The processor must be fresh (empty
  /// buffer, unlatched reference) — migration restores onto a
  /// newly-reset processor, never merges.
  void RestoreStreamState(std::span<const float> tail,
                          double reference_peak);

  const ModuleTimings& timings() const { return timings_; }
  std::size_t chunk_samples() const { return chunk_samples_; }
  SelectorKind kind() const { return kind_; }
  const NecPipeline& pipeline() const { return pipeline_; }

  /// STFT/ISTFT scratch for whoever generates this processor's shadows
  /// (the processor itself, or the runtime coalescer in batched mode).
  /// Scratch only — contents never affect output bits — but not shareable
  /// across concurrent callers.
  dsp::StftWorkspace& stft_workspace() { return scratch_.stft; }

  /// Full per-chunk scratch (workspace, spectrogram, shadow surface,
  /// selector arena) for whoever drives GenerateShadowInto on this
  /// processor's stream. Same sharing contract as stft_workspace().
  ShadowScratch& shadow_scratch() { return scratch_; }

 private:
  audio::Waveform ProcessChunk(audio::Waveform chunk);

  const NecPipeline& pipeline_;
  SelectorKind kind_;
  std::size_t chunk_samples_;
  audio::Waveform buffer_;
  ModuleTimings timings_;
  /// Reused per-chunk scratch (DESIGN.md §5i) — the hot path allocates
  /// nothing after the first chunk. Processors are single-threaded by
  /// contract.
  ShadowScratch scratch_;
  /// Cached modulation resampler taps (16 kHz baseband → air rate).
  dsp::ResamplerPlan resample_plan_;
  /// Reused Push-path buffers: popped chunk, baseband shadow, modulated
  /// output of the chunk in flight.
  audio::Waveform chunk_wave_;
  audio::Waveform shadow_wave_;
  audio::Waveform modulated_wave_;
  /// Stream-wide modulation reference, latched from the first non-silent
  /// shadow chunk when options().modulation.reference_peak is 0. One gain
  /// for the whole stream keeps the emitted power coefficient from
  /// drifting chunk-to-chunk (per-chunk peak normalization boosted quiet
  /// chunks and attenuated loud ones).
  double mod_reference_peak_ = 0.0;
};

}  // namespace nec::core
