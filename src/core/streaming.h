// Real-time chunked processing with per-module latency accounting.
//
// The paper's deployment (§VI-C, Table II) processes the monitored stream
// in 1 s chunks: each chunk goes encoder-conditioned selector → inverse
// STFT → ultrasonic modulation, and the total per-chunk latency must stay
// under the ~300 ms overshadowing tolerance (§IV-C2). StreamingProcessor
// reproduces that loop and reports wall-clock timing per module.
#pragma once

#include <cstdint>
#include <optional>
#include <span>

#include "audio/waveform.h"
#include "core/pipeline.h"

namespace nec::core {

struct ModuleTimings {
  double selector_ms = 0.0;   ///< STFT + DNN + inverse STFT
  double broadcast_ms = 0.0;  ///< ultrasonic modulation
  std::size_t chunks = 0;

  double total_ms() const { return selector_ms + broadcast_ms; }
  double avg_selector_ms() const {
    return chunks ? selector_ms / chunks : 0.0;
  }
  double avg_broadcast_ms() const {
    return chunks ? broadcast_ms / chunks : 0.0;
  }
};

class StreamingProcessor {
 public:
  /// `chunk_s`: chunk duration (paper uses 1 s clips in Table II). The
  /// pipeline is borrowed const — processing never mutates it, so many
  /// processors (one per runtime session) can reference pipelines sharing
  /// one trained weight set.
  StreamingProcessor(const NecPipeline& pipeline, double chunk_s = 1.0,
                     SelectorKind kind = SelectorKind::kNeural);

  /// Feeds monitored samples; returns a modulated shadow chunk whenever a
  /// full chunk has accumulated (at the air sample rate), else nullopt.
  std::optional<audio::Waveform> Push(std::span<const float> samples);

  /// Flushes a final partial chunk (zero-padded) if any samples remain.
  std::optional<audio::Waveform> Flush();

  /// Discards buffered samples and the stream-wide modulation-reference
  /// latch, starting a fresh stream (nec::runtime uses this to return a
  /// faulted session to service). Cumulative timings are kept. Must be
  /// called from the single thread that owns the processor.
  void Reset();

  // --- Decomposed chunk path (runtime micro-batching; see DESIGN.md §5e).
  //
  // Push == BufferSamples + { PopChunk → GenerateShadow →
  // CompleteShadowChunk } per full chunk. The batched runtime splits the
  // loop across threads: the session strand only buffers and pops, the
  // coalescer runs the batched shadow generation and then completes each
  // chunk IN STREAM ORDER — CompleteShadowChunk latches the stream-wide
  // modulation reference from the first non-silent shadow, so completion
  // order is part of the output bits.

  /// Appends monitored samples without processing anything.
  void BufferSamples(std::span<const float> samples);

  /// True when at least chunk_samples() are buffered.
  bool HasFullChunk() const { return buffer_.size() >= chunk_samples_; }

  /// Pops the oldest full chunk (requires HasFullChunk()).
  audio::Waveform PopChunk();

  /// Second half of the chunk path: stream-reference latch + ultrasonic
  /// modulation + timing accounting for a shadow produced externally
  /// (batched GenerateShadowBatch). `selector_ms` is the shadow-generation
  /// time to attribute to this chunk. Chunks of one processor must be
  /// completed in the order they were popped.
  audio::Waveform CompleteShadowChunk(audio::Waveform shadow,
                                      double selector_ms);

  const ModuleTimings& timings() const { return timings_; }
  std::size_t chunk_samples() const { return chunk_samples_; }
  SelectorKind kind() const { return kind_; }
  const NecPipeline& pipeline() const { return pipeline_; }

  /// STFT/ISTFT scratch for whoever generates this processor's shadows
  /// (the processor itself, or the runtime coalescer in batched mode).
  /// Scratch only — contents never affect output bits — but not shareable
  /// across concurrent callers.
  dsp::StftWorkspace& stft_workspace() { return stft_ws_; }

 private:
  audio::Waveform ProcessChunk(audio::Waveform chunk);

  const NecPipeline& pipeline_;
  SelectorKind kind_;
  std::size_t chunk_samples_;
  audio::Waveform buffer_;
  ModuleTimings timings_;
  /// Reused STFT/ISTFT scratch — the per-chunk hot path allocates nothing
  /// after the first chunk. Processors are single-threaded by contract.
  dsp::StftWorkspace stft_ws_;
  /// Stream-wide modulation reference, latched from the first non-silent
  /// shadow chunk when options().modulation.reference_peak is 0. One gain
  /// for the whole stream keeps the emitted power coefficient from
  /// drifting chunk-to-chunk (per-chunk peak normalization boosted quiet
  /// chunks and attenuated loud ones).
  double mod_reference_peak_ = 0.0;
};

}  // namespace nec::core
