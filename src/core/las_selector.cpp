#include "core/las_selector.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace nec::core {

LasSelector::LasSelector(const NecConfig& config) : config_(config) {}

void LasSelector::Enroll(std::span<const audio::Waveform> references) {
  NEC_CHECK_MSG(!references.empty(), "LasSelector enrollment needs clips");
  const std::size_t F = config_.num_bins();
  reference_las_.assign(F, 0.0f);

  for (const audio::Waveform& ref : references) {
    const dsp::Spectrogram spec = dsp::Stft(ref, config_.stft);
    // Energy-gated frame average (silence diluted out).
    std::vector<double> acc(F, 0.0);
    double max_e = 0.0;
    std::vector<double> frame_e(spec.num_frames(), 0.0);
    for (std::size_t t = 0; t < spec.num_frames(); ++t) {
      for (std::size_t f = 0; f < F; ++f) {
        frame_e[t] += static_cast<double>(spec.MagAt(t, f)) *
                      spec.MagAt(t, f);
      }
      max_e = std::max(max_e, frame_e[t]);
    }
    std::size_t used = 0;
    for (std::size_t t = 0; t < spec.num_frames(); ++t) {
      if (frame_e[t] < 0.01 * max_e) continue;
      for (std::size_t f = 0; f < F; ++f) acc[f] += spec.MagAt(t, f);
      ++used;
    }
    if (used == 0) continue;
    for (std::size_t f = 0; f < F; ++f) {
      reference_las_[f] += static_cast<float>(acc[f] / used);
    }
  }
  // Normalize to unit L2 so the mask constant below is scale-free.
  double norm = 0.0;
  for (float v : reference_las_) norm += static_cast<double>(v) * v;
  norm = std::sqrt(norm);
  if (norm > 1e-12) {
    for (float& v : reference_las_) v = static_cast<float>(v / norm);
  }
}

void LasSelector::ComputeShadowInto(const dsp::Spectrogram& spec,
                                    std::vector<float>& out) const {
  NEC_CHECK_MSG(enrolled(), "LasSelector used before enrollment");
  const std::size_t T = spec.num_frames(), F = spec.num_bins();
  NEC_CHECK(F == reference_las_.size());

  // Per-bin share: Wiener-style with the mean squared LAS as the noise
  // constant.
  double mean_sq = 0.0;
  for (float v : reference_las_) mean_sq += static_cast<double>(v) * v;
  mean_sq /= static_cast<double>(F);
  thread_local std::vector<float> share;
  share.resize(F);
  for (std::size_t f = 0; f < F; ++f) {
    const double l2 = static_cast<double>(reference_las_[f]) *
                      reference_las_[f];
    share[f] = static_cast<float>(l2 / (l2 + mean_sq));
  }

  out.assign(T * F, 0.0f);
  for (std::size_t t = 0; t < T; ++t) {
    // Frame activity: rectified cosine similarity with the target LAS.
    double dot = 0.0, ee = 0.0;
    for (std::size_t f = 0; f < F; ++f) {
      const double m = spec.MagAt(t, f);
      dot += m * reference_las_[f];
      ee += m * m;
    }
    const double activity =
        ee > 1e-18 ? std::max(0.0, dot / std::sqrt(ee)) : 0.0;
    for (std::size_t f = 0; f < F; ++f) {
      out[t * F + f] = -static_cast<float>(activity) * share[f] *
                       spec.MagAt(t, f);
    }
  }
}

std::vector<float> LasSelector::ComputeShadow(
    const dsp::Spectrogram& spec) const {
  std::vector<float> out;
  ComputeShadowInto(spec, out);
  return out;
}

}  // namespace nec::core
