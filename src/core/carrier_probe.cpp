#include "core/carrier_probe.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "channel/microphone.h"
#include "channel/modulation.h"
#include "channel/scene.h"
#include "common/check.h"

namespace nec::core {
namespace {

double DemodLevel(const channel::DeviceProfile& device, double carrier_hz,
                  const audio::Waveform& probe,
                  const CarrierProbeOptions& options) {
  const audio::Waveform mod =
      channel::ModulateAm(probe, {.carrier_hz = carrier_hz});
  channel::SceneSimulator sim;
  channel::MicrophoneModel mic(device, {.noise_seed = options.noise_seed});
  const audio::Waveform rec = sim.Record(
      {}, {{.wave = &mod,
            .distance_m = options.probe_distance_m,
            .spl_at_ref_db = options.probe_spl_db,
            .carrier_hz = carrier_hz}},
      mic);
  return rec.Rms();
}

}  // namespace

CarrierResponse ProbeCarrierResponse(const channel::DeviceProfile& device,
                                     const CarrierProbeOptions& options) {
  NEC_CHECK(options.sweep_hi_hz > options.sweep_lo_hz &&
            options.step_hz > 0.0);
  audio::Waveform probe(16000, static_cast<std::size_t>(
                                   16000 * options.probe_duration_s));
  for (std::size_t i = 0; i < probe.size(); ++i) {
    probe[i] = static_cast<float>(
        0.5 * std::sin(2.0 * std::numbers::pi * options.probe_tone_hz * i /
                       16000.0));
  }

  CarrierResponse resp;
  double best = 0.0;
  for (double fc = options.sweep_lo_hz; fc <= options.sweep_hi_hz + 1e-9;
       fc += options.step_hz) {
    const double level = DemodLevel(device, fc, probe, options);
    resp.carrier_hz.push_back(fc);
    resp.demod_level.push_back(level);
    if (level > best) {
      best = level;
      resp.best_carrier_hz = fc;
    }
  }

  const double edge = best * std::pow(10.0, -options.band_edge_db / 20.0);
  resp.band_lo_hz = resp.best_carrier_hz;
  resp.band_hi_hz = resp.best_carrier_hz;
  for (std::size_t i = 0; i < resp.carrier_hz.size(); ++i) {
    if (resp.demod_level[i] >= edge) {
      resp.band_lo_hz = std::min(resp.band_lo_hz, resp.carrier_hz[i]);
      resp.band_hi_hz = std::max(resp.band_hi_hz, resp.carrier_hz[i]);
    }
  }
  return resp;
}

double SelectBestCarrier(const channel::DeviceProfile& device,
                         const CarrierProbeOptions& options) {
  return ProbeCarrierResponse(device, options).best_carrier_hz;
}

double SelectCarrierForAll(
    const std::vector<channel::DeviceProfile>& devices,
    const CarrierProbeOptions& options) {
  NEC_CHECK_MSG(!devices.empty(), "need at least one device");
  std::vector<CarrierResponse> responses;
  responses.reserve(devices.size());
  for (const auto& d : devices) {
    responses.push_back(ProbeCarrierResponse(d, options));
  }
  const std::size_t n = responses[0].carrier_hz.size();
  double best_fc = responses[0].carrier_hz[0];
  double best_min = -1.0;
  for (std::size_t i = 0; i < n; ++i) {
    double min_level = 1e30;
    for (const auto& r : responses) {
      // Normalize per device so a single sensitive phone does not
      // dominate the max-min choice.
      const double peak =
          *std::max_element(r.demod_level.begin(), r.demod_level.end());
      min_level = std::min(min_level,
                           peak > 0 ? r.demod_level[i] / peak : 0.0);
    }
    if (min_level > best_min) {
      best_min = min_level;
      best_fc = responses[0].carrier_hz[i];
    }
  }
  return best_fc;
}

}  // namespace nec::core
