#include "core/streaming.h"

#include <chrono>

#include "channel/modulation.h"
#include "common/check.h"

namespace nec::core {
namespace {

double MsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

StreamingProcessor::StreamingProcessor(const NecPipeline& pipeline,
                                       double chunk_s,
                                       SelectorKind kind)
    : pipeline_(pipeline),
      kind_(kind),
      chunk_samples_(static_cast<std::size_t>(
          chunk_s * pipeline.config().sample_rate)),
      buffer_(pipeline.config().sample_rate, std::size_t{0}) {
  NEC_CHECK_MSG(chunk_samples_ >= pipeline.config().stft.win_length,
                "chunk shorter than one analysis window");
}

audio::Waveform StreamingProcessor::ProcessChunk(audio::Waveform chunk) {
  const auto t0 = std::chrono::steady_clock::now();
  audio::Waveform shadow = pipeline_.GenerateShadow(chunk, kind_);
  timings_.selector_ms += MsSince(t0);

  const auto t1 = std::chrono::steady_clock::now();
  audio::Waveform modulated =
      channel::ModulateAm(shadow, pipeline_.options().modulation);
  timings_.broadcast_ms += MsSince(t1);
  ++timings_.chunks;
  return modulated;
}

std::optional<audio::Waveform> StreamingProcessor::Push(
    std::span<const float> samples) {
  for (float s : samples) buffer_.data().push_back(s);
  if (buffer_.size() < chunk_samples_) return std::nullopt;

  // Drain every complete chunk (a single Push may deliver several) and
  // concatenate their modulated output in stream order.
  audio::Waveform out;
  while (buffer_.size() >= chunk_samples_) {
    audio::Waveform chunk = buffer_.Slice(0, chunk_samples_);
    audio::Waveform rest(pipeline_.config().sample_rate,
                         std::vector<float>(buffer_.data().begin() +
                                                static_cast<std::ptrdiff_t>(
                                                    chunk_samples_),
                                            buffer_.data().end()));
    buffer_ = std::move(rest);
    out.Append(ProcessChunk(std::move(chunk)));
  }
  return out;
}

std::optional<audio::Waveform> StreamingProcessor::Flush() {
  if (buffer_.empty()) return std::nullopt;
  audio::Waveform chunk = buffer_.Slice(0, chunk_samples_);  // zero-padded
  buffer_ = audio::Waveform(pipeline_.config().sample_rate, std::size_t{0});
  return ProcessChunk(std::move(chunk));
}

}  // namespace nec::core
