#include "core/streaming.h"

#include <chrono>

#include "channel/modulation.h"
#include "common/check.h"
#include "obs/trace.h"

namespace nec::core {
namespace {

double MsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

StreamingProcessor::StreamingProcessor(const NecPipeline& pipeline,
                                       double chunk_s,
                                       SelectorKind kind)
    : pipeline_(pipeline),
      kind_(kind),
      chunk_samples_(static_cast<std::size_t>(
          chunk_s * pipeline.config().sample_rate)),
      buffer_(pipeline.config().sample_rate, std::size_t{0}) {
  NEC_CHECK_MSG(chunk_samples_ >= pipeline.config().stft.win_length,
                "chunk shorter than one analysis window");
}

audio::Waveform StreamingProcessor::ProcessChunk(audio::Waveform chunk) {
  NEC_TRACE_SPAN("stream.process_chunk");
  const auto t0 = std::chrono::steady_clock::now();
  audio::Waveform shadow = pipeline_.GenerateShadow(chunk, kind_, &stft_ws_);
  return CompleteShadowChunk(std::move(shadow), MsSince(t0));
}

audio::Waveform StreamingProcessor::CompleteShadowChunk(
    audio::Waveform shadow, double selector_ms) {
  timings_.selector_ms += selector_ms;

  const auto t1 = std::chrono::steady_clock::now();
  channel::ModulationConfig mod = pipeline_.options().modulation;
  if (mod.reference_peak <= 0.0) {
    // No explicit stream reference configured: latch one from the first
    // non-silent shadow so every later chunk is modulated with the same
    // gain. The latch is a pure function of the chunk sequence, so
    // concurrent runtime sessions replaying the same stream stay
    // bit-identical to a sequential processor.
    if (mod_reference_peak_ <= 0.0) {
      const float peak = shadow.Peak();
      if (peak > 0.0f) mod_reference_peak_ = peak;
    }
    if (mod_reference_peak_ > 0.0) mod.reference_peak = mod_reference_peak_;
  }
  audio::Waveform modulated;
  {
    NEC_TRACE_SPAN("channel.modulate_am");
    modulated = channel::ModulateAm(shadow, mod);
  }
  timings_.broadcast_ms += MsSince(t1);
  ++timings_.chunks;
  return modulated;
}

void StreamingProcessor::BufferSamples(std::span<const float> samples) {
  buffer_.data().insert(buffer_.data().end(), samples.begin(),
                        samples.end());
}

audio::Waveform StreamingProcessor::PopChunk() {
  NEC_CHECK_MSG(HasFullChunk(), "PopChunk without a full buffered chunk");
  audio::Waveform chunk = buffer_.Slice(0, chunk_samples_);
  buffer_.data().erase(
      buffer_.data().begin(),
      buffer_.data().begin() + static_cast<std::ptrdiff_t>(chunk_samples_));
  return chunk;
}

std::optional<audio::Waveform> StreamingProcessor::Push(
    std::span<const float> samples) {
  buffer_.data().insert(buffer_.data().end(), samples.begin(),
                        samples.end());
  if (buffer_.size() < chunk_samples_) return std::nullopt;

  // Drain every complete chunk (a single Push may deliver several) and
  // concatenate their modulated output in stream order. Chunks are read at
  // an advancing offset and the consumed prefix is erased once afterwards;
  // rebuilding the remainder vector per chunk made a long Push quadratic
  // in the number of buffered chunks.
  audio::Waveform out;
  std::size_t pos = 0;
  while (buffer_.size() - pos >= chunk_samples_) {
    out.Append(ProcessChunk(buffer_.Slice(pos, chunk_samples_)));
    pos += chunk_samples_;
  }
  buffer_.data().erase(
      buffer_.data().begin(),
      buffer_.data().begin() + static_cast<std::ptrdiff_t>(pos));
  return out;
}

void StreamingProcessor::Reset() {
  buffer_ = audio::Waveform(pipeline_.config().sample_rate, std::size_t{0});
  mod_reference_peak_ = 0.0;
}

std::optional<audio::Waveform> StreamingProcessor::Flush() {
  if (buffer_.empty()) return std::nullopt;
  audio::Waveform chunk = buffer_.Slice(0, chunk_samples_);  // zero-padded
  buffer_ = audio::Waveform(pipeline_.config().sample_rate, std::size_t{0});
  return ProcessChunk(std::move(chunk));
}

}  // namespace nec::core
