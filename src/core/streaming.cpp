#include "core/streaming.h"

#include <algorithm>
#include <chrono>

#include "channel/modulation.h"
#include "common/check.h"
#include "obs/trace.h"

namespace nec::core {
namespace {

double MsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

StreamingProcessor::StreamingProcessor(const NecPipeline& pipeline,
                                       double chunk_s,
                                       SelectorKind kind)
    : pipeline_(pipeline),
      kind_(kind),
      chunk_samples_(static_cast<std::size_t>(
          chunk_s * pipeline.config().sample_rate)),
      buffer_(pipeline.config().sample_rate, std::size_t{0}) {
  NEC_CHECK_MSG(chunk_samples_ >= pipeline.config().stft.win_length,
                "chunk shorter than one analysis window");
}

void StreamingProcessor::ProcessChunkInto(const audio::Waveform& chunk,
                                          audio::Waveform& out) {
  NEC_TRACE_SPAN("stream.process_chunk");
  const auto t0 = std::chrono::steady_clock::now();
  pipeline_.GenerateShadowInto(chunk, kind_, scratch_, shadow_wave_);
  CompleteShadowChunkInto(shadow_wave_, MsSince(t0), out);
}

audio::Waveform StreamingProcessor::ProcessChunk(audio::Waveform chunk) {
  audio::Waveform out;
  ProcessChunkInto(chunk, out);
  return out;
}

void StreamingProcessor::CompleteShadowChunkInto(
    const audio::Waveform& shadow, double selector_ms,
    audio::Waveform& out) {
  timings_.selector_ms += selector_ms;

  const auto t1 = std::chrono::steady_clock::now();
  channel::ModulationConfig mod = pipeline_.options().modulation;
  if (mod.reference_peak <= 0.0) {
    // No explicit stream reference configured: latch one from the first
    // non-silent shadow so every later chunk is modulated with the same
    // gain. The latch is a pure function of the chunk sequence, so
    // concurrent runtime sessions replaying the same stream stay
    // bit-identical to a sequential processor.
    if (mod_reference_peak_ <= 0.0) {
      const float peak = shadow.Peak();
      if (peak > 0.0f) mod_reference_peak_ = peak;
    }
    if (mod_reference_peak_ > 0.0) mod.reference_peak = mod_reference_peak_;
  }
  {
    NEC_TRACE_SPAN("channel.modulate_am");
    channel::ModulateAmInto(shadow, mod, resample_plan_, out);
  }
  timings_.broadcast_ms += MsSince(t1);
  ++timings_.chunks;
}

audio::Waveform StreamingProcessor::CompleteShadowChunk(
    audio::Waveform shadow, double selector_ms) {
  audio::Waveform out;
  CompleteShadowChunkInto(shadow, selector_ms, out);
  return out;
}

void StreamingProcessor::BufferSamples(std::span<const float> samples) {
  buffer_.data().insert(buffer_.data().end(), samples.begin(),
                        samples.end());
}

void StreamingProcessor::PopChunkInto(audio::Waveform& chunk) {
  NEC_CHECK_MSG(HasFullChunk(), "PopChunk without a full buffered chunk");
  chunk.AssignSilence(buffer_.sample_rate(), chunk_samples_);
  std::copy(buffer_.data().begin(),
            buffer_.data().begin() +
                static_cast<std::ptrdiff_t>(chunk_samples_),
            chunk.data().begin());
  buffer_.data().erase(
      buffer_.data().begin(),
      buffer_.data().begin() + static_cast<std::ptrdiff_t>(chunk_samples_));
}

audio::Waveform StreamingProcessor::PopChunk() {
  audio::Waveform chunk;
  PopChunkInto(chunk);
  return chunk;
}

std::optional<audio::Waveform> StreamingProcessor::Push(
    std::span<const float> samples) {
  buffer_.data().insert(buffer_.data().end(), samples.begin(),
                        samples.end());
  if (buffer_.size() < chunk_samples_) return std::nullopt;

  // Drain every complete chunk (a single Push may deliver several) and
  // concatenate their modulated output in stream order. Chunks are read at
  // an advancing offset into reused scratch buffers and the consumed
  // prefix is erased once afterwards; only the returned concatenation
  // allocates (the per-chunk pipeline runs through the Into path).
  audio::Waveform out;
  std::size_t pos = 0;
  while (buffer_.size() - pos >= chunk_samples_) {
    chunk_wave_.AssignSilence(buffer_.sample_rate(), chunk_samples_);
    std::copy(buffer_.data().begin() + static_cast<std::ptrdiff_t>(pos),
              buffer_.data().begin() +
                  static_cast<std::ptrdiff_t>(pos + chunk_samples_),
              chunk_wave_.data().begin());
    ProcessChunkInto(chunk_wave_, modulated_wave_);
    out.Append(modulated_wave_);
    pos += chunk_samples_;
  }
  buffer_.data().erase(
      buffer_.data().begin(),
      buffer_.data().begin() + static_cast<std::ptrdiff_t>(pos));
  return out;
}

void StreamingProcessor::Reset() {
  buffer_ = audio::Waveform(pipeline_.config().sample_rate, std::size_t{0});
  mod_reference_peak_ = 0.0;
}

void StreamingProcessor::RestoreStreamState(std::span<const float> tail,
                                            double reference_peak) {
  NEC_CHECK_MSG(buffer_.empty() && mod_reference_peak_ == 0.0,
                "RestoreStreamState on a non-fresh processor");
  buffer_.data().assign(tail.begin(), tail.end());
  mod_reference_peak_ = reference_peak;
}

std::optional<audio::Waveform> StreamingProcessor::Flush() {
  if (buffer_.empty()) return std::nullopt;
  audio::Waveform chunk = buffer_.Slice(0, chunk_samples_);  // zero-padded
  buffer_ = audio::Waveform(pipeline_.config().sample_rate, std::size_t{0});
  return ProcessChunk(std::move(chunk));
}

}  // namespace nec::core
