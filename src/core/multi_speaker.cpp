#include "core/multi_speaker.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "dsp/stft.h"

namespace nec::core {

MultiSpeakerProtector::MultiSpeakerProtector(const NecPipeline& pipeline)
    : pipeline_(pipeline) {}

std::size_t MultiSpeakerProtector::EnrollTarget(
    std::span<const audio::Waveform> references) {
  dvectors_.push_back(pipeline_.encoder().EmbedReferences(references));
  return dvectors_.size() - 1;
}

audio::Waveform MultiSpeakerProtector::GenerateShadow(
    const audio::Waveform& mixed, MultiStrategy strategy) {
  NEC_CHECK_MSG(!dvectors_.empty(), "enroll at least one target first");
  NEC_CHECK(mixed.sample_rate() == pipeline_.config().sample_rate);
  const dsp::StftConfig& stft = pipeline_.config().stft;
  const dsp::Spectrogram spec = dsp::Stft(mixed, stft);

  std::vector<float> total_shadow;
  if (strategy == MultiStrategy::kMergedEmbedding) {
    // One pseudo-speaker: the normalized mean of the enrolled d-vectors.
    std::vector<float> merged(dvectors_[0].size(), 0.0f);
    for (const auto& d : dvectors_) {
      for (std::size_t i = 0; i < merged.size(); ++i) merged[i] += d[i];
    }
    double norm = 0.0;
    for (float v : merged) norm += static_cast<double>(v) * v;
    norm = std::sqrt(norm);
    if (norm > 1e-12) {
      for (float& v : merged) v = static_cast<float>(v / norm);
    }
    total_shadow = pipeline_.selector().ComputeShadow(spec, merged);
  } else {
    // Iterative residual: each pass cancels one target from what the
    // previous passes left standing.
    dsp::Spectrogram residual = spec;
    total_shadow.assign(spec.mag().size(), 0.0f);
    for (const auto& d : dvectors_) {
      const std::vector<float> shadow =
          pipeline_.selector().ComputeShadow(residual, d);
      for (std::size_t i = 0; i < shadow.size(); ++i) {
        total_shadow[i] += shadow[i];
        residual.mag()[i] =
            std::max(0.0f, residual.mag()[i] + shadow[i]);
      }
    }
  }

  return dsp::IstftWithPhase(total_shadow, spec, stft,
                             pipeline_.config().sample_rate, mixed.size());
}

}  // namespace nec::core
