// Speaker encoders — the paper's d-vector Encoder module.
//
// The encoder turns reference audio of the target speaker into a fixed
// speaker embedding the Selector is conditioned on. Two implementations:
//
//   * LasEncoder: deterministic — mean/variance-normalized log-mel LAS.
//     No training required; directly realizes §III's observation that LAS
//     quantifies the timbre pattern. Serves as an ablation baseline.
//   * NeuralEncoder: a small MLP over the same features trained with a
//     GE2E-style contrastive loss (Wan et al., the d-vector training the
//     paper cites) on synthetic speakers, producing a metric space where
//     same-speaker utterances cluster.
//
// Both produce unit-L2 embeddings. EmbedReferences averages per-clip
// embeddings and re-normalizes (the paper enrolls with 3 clips of 3 s).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "audio/waveform.h"
#include "encoder/las.h"

namespace nec::encoder {

/// Shared front-end features: log-mel compression of the voiced LAS.
/// Returns `num_mels` values, mean/variance normalized.
std::vector<float> LasMelFeatures(const audio::Waveform& wave,
                                  std::size_t num_mels = 40,
                                  const LasConfig& config = {});

class SpeakerEncoder {
 public:
  virtual ~SpeakerEncoder() = default;

  /// Embeds one utterance into a unit-L2 speaker vector.
  virtual std::vector<float> Embed(const audio::Waveform& wave) const = 0;

  /// Embedding dimension.
  virtual std::size_t dim() const = 0;

  /// Enrollment: averages per-clip embeddings and re-normalizes.
  std::vector<float> EmbedReferences(
      std::span<const audio::Waveform> references) const;
};

/// Deterministic LAS-based d-vector.
class LasEncoder : public SpeakerEncoder {
 public:
  explicit LasEncoder(std::size_t num_mels = 40);

  std::vector<float> Embed(const audio::Waveform& wave) const override;
  std::size_t dim() const override { return num_mels_; }

 private:
  std::size_t num_mels_;
};

/// Trainable MLP d-vector (GE2E-style training).
class NeuralEncoder : public SpeakerEncoder {
 public:
  struct Config {
    std::size_t num_mels = 40;
    std::size_t hidden = 64;
    std::size_t embedding_dim = 32;
  };

  struct TrainOptions {
    std::size_t num_speakers = 24;       ///< synthetic training speakers
    std::size_t utterances_per_speaker = 4;
    std::size_t steps = 60;
    float lr = 3e-3f;
    int sample_rate = 16000;
    double utterance_s = 2.0;
    std::uint64_t seed = 17;
    bool verbose = false;
  };

  explicit NeuralEncoder(const Config& config, std::uint64_t init_seed = 7);

  /// Trains with the GE2E softmax contrastive loss on synthetic speakers;
  /// returns the final loss.
  float Train(const TrainOptions& options);

  std::vector<float> Embed(const audio::Waveform& wave) const override;
  std::size_t dim() const override { return config_.embedding_dim; }

  void Save(const std::string& path) const;
  static NeuralEncoder Load(const std::string& path);

  const Config& config() const { return config_; }

 private:
  std::vector<float> EmbedFeatures(const std::vector<float>& feats) const;

  Config config_;
  // MLP parameters: (hidden, num_mels), (hidden), (emb, hidden), (emb).
  std::vector<float> w1_, b1_, w2_, b2_;
};

}  // namespace nec::encoder
