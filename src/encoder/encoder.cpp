#include "encoder/encoder.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/check.h"
#include "common/rng.h"
#include "dsp/mel.h"
#include "obs/log.h"
#include "obs/trace.h"
#include "nn/serialize.h"
#include "synth/dataset.h"

namespace nec::encoder {
namespace {

void L2Normalize(std::vector<float>& v) {
  double acc = 0.0;
  for (float x : v) acc += static_cast<double>(x) * x;
  const float norm = static_cast<float>(std::sqrt(acc));
  if (norm > 1e-12f) {
    for (float& x : v) x /= norm;
  }
}

float Dot(const std::vector<float>& a, const std::vector<float>& b) {
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i)
    acc += static_cast<double>(a[i]) * b[i];
  return static_cast<float>(acc);
}

}  // namespace

std::vector<float> LasMelFeatures(const audio::Waveform& wave,
                                  std::size_t num_mels,
                                  const LasConfig& config) {
  const std::vector<float> las = VoicedLas(wave, config);
  const std::size_t bins = las.size();

  // LAS magnitudes -> power -> mel bands -> log -> normalize.
  std::vector<float> power(bins);
  for (std::size_t i = 0; i < bins; ++i) power[i] = las[i] * las[i];

  const dsp::MelFilterbank bank(num_mels * 2, bins,
                                static_cast<double>(wave.sample_rate()));
  std::vector<float> mel = bank.Apply(power);
  std::vector<float> logmel = dsp::LogCompress(mel, 1e-12f);

  // Cepstral lifter: DCT the log-mel LAS and drop c0/c1 (loudness and
  // broad spectral tilt, which all voices share); the remaining mid-order
  // coefficients encode the formant structure — the speaker-specific
  // timbre pattern of §III. Features are the liftered cepstrum itself.
  std::vector<float> cep = dsp::Dct2(logmel, num_mels + 2);
  std::vector<float> feats(cep.begin() + 2, cep.end());

  // Variance normalization (scale invariance).
  double var = 0.0;
  for (float v : feats) var += static_cast<double>(v) * v;
  var /= static_cast<double>(feats.size());
  const float inv_std = static_cast<float>(1.0 / std::sqrt(var + 1e-9));
  for (float& v : feats) v *= inv_std;
  return feats;
}

std::vector<float> SpeakerEncoder::EmbedReferences(
    std::span<const audio::Waveform> references) const {
  NEC_TRACE_SPAN("encoder.embed_references");
  NEC_CHECK_MSG(!references.empty(), "enrollment needs >= 1 reference clip");
  std::vector<float> acc(dim(), 0.0f);
  for (const audio::Waveform& ref : references) {
    const std::vector<float> e = Embed(ref);
    for (std::size_t i = 0; i < acc.size(); ++i) acc[i] += e[i];
  }
  L2Normalize(acc);
  return acc;
}

// ------------------------------------------------------------ LasEncoder

LasEncoder::LasEncoder(std::size_t num_mels) : num_mels_(num_mels) {
  NEC_CHECK(num_mels >= 8);
}

std::vector<float> LasEncoder::Embed(const audio::Waveform& wave) const {
  std::vector<float> feats = LasMelFeatures(wave, num_mels_);
  L2Normalize(feats);
  return feats;
}

// --------------------------------------------------------- NeuralEncoder

NeuralEncoder::NeuralEncoder(const Config& config, std::uint64_t init_seed)
    : config_(config) {
  Rng rng(init_seed ^ 0xC2B2AE3D27D4EB4FULL);
  const std::size_t in = config_.num_mels, h = config_.hidden,
                    out = config_.embedding_dim;
  auto init = [&rng](std::vector<float>& w, std::size_t n,
                     std::size_t fan_in) {
    w.resize(n);
    const float std = std::sqrt(2.0f / static_cast<float>(fan_in));
    for (float& v : w) v = rng.GaussianF(0.0f, std);
  };
  init(w1_, h * in, in);
  b1_.assign(h, 0.0f);
  init(w2_, out * h, h);
  b2_.assign(out, 0.0f);
}

std::vector<float> NeuralEncoder::EmbedFeatures(
    const std::vector<float>& feats) const {
  NEC_CHECK(feats.size() == config_.num_mels);
  const std::size_t in = config_.num_mels, h = config_.hidden,
                    out = config_.embedding_dim;
  std::vector<float> hidden(h);
  for (std::size_t j = 0; j < h; ++j) {
    double acc = b1_[j];
    for (std::size_t i = 0; i < in; ++i) acc += w1_[j * in + i] * feats[i];
    hidden[j] = std::tanh(static_cast<float>(acc));
  }
  std::vector<float> y(out);
  for (std::size_t k = 0; k < out; ++k) {
    double acc = b2_[k];
    for (std::size_t j = 0; j < h; ++j) acc += w2_[k * h + j] * hidden[j];
    y[k] = static_cast<float>(acc);
  }
  L2Normalize(y);
  return y;
}

std::vector<float> NeuralEncoder::Embed(const audio::Waveform& wave) const {
  return EmbedFeatures(LasMelFeatures(wave, config_.num_mels));
}

float NeuralEncoder::Train(const TrainOptions& options) {
  // --- Build the training bank: features per (speaker, utterance).
  Rng rng(options.seed ^ 0xFF51AFD7ED558CCDULL);
  const std::size_t N = options.num_speakers;
  const std::size_t M = options.utterances_per_speaker;
  synth::DatasetBuilder builder({.sample_rate = options.sample_rate,
                                 .duration_s = options.utterance_s});
  const auto speakers =
      synth::DatasetBuilder::MakeSpeakers(N, options.seed * 31 + 5);

  std::vector<std::vector<float>> feats(N * M);
  for (std::size_t j = 0; j < N; ++j) {
    for (std::size_t i = 0; i < M; ++i) {
      const synth::Utterance utt =
          builder.MakeUtterance(speakers[j], rng.NextSeed());
      feats[j * M + i] = LasMelFeatures(utt.wave, config_.num_mels);
    }
  }

  const std::size_t in = config_.num_mels, h = config_.hidden,
                    out = config_.embedding_dim;
  constexpr float kW = 10.0f, kB = -5.0f;  // GE2E scale/offset (fixed)

  // Momentum buffers.
  std::vector<float> mw1(w1_.size(), 0), mb1(b1_.size(), 0),
      mw2(w2_.size(), 0), mb2(b2_.size(), 0);

  float last_loss = 0.0f;
  for (std::size_t step = 0; step < options.steps; ++step) {
    // Forward all utterances, caching hidden activations and raw outputs.
    std::vector<std::vector<float>> hid(N * M), raw(N * M), emb(N * M);
    for (std::size_t u = 0; u < N * M; ++u) {
      const auto& x = feats[u];
      hid[u].resize(h);
      for (std::size_t j = 0; j < h; ++j) {
        double acc = b1_[j];
        for (std::size_t i = 0; i < in; ++i)
          acc += w1_[j * in + i] * x[i];
        hid[u][j] = std::tanh(static_cast<float>(acc));
      }
      raw[u].resize(out);
      for (std::size_t k = 0; k < out; ++k) {
        double acc = b2_[k];
        for (std::size_t j = 0; j < h; ++j)
          acc += w2_[k * h + j] * hid[u][j];
        raw[u][k] = static_cast<float>(acc);
      }
      emb[u] = raw[u];
      L2Normalize(emb[u]);
    }

    // Centroids (stop-gradient approximation: centroids treated as
    // constants during backprop, the standard stabilization).
    std::vector<std::vector<float>> cent(N, std::vector<float>(out, 0.0f));
    for (std::size_t j = 0; j < N; ++j) {
      for (std::size_t i = 0; i < M; ++i) {
        for (std::size_t k = 0; k < out; ++k)
          cent[j][k] += emb[j * M + i][k];
      }
      L2Normalize(cent[j]);
    }

    // GE2E softmax loss and gradient w.r.t. each (unit) embedding.
    double loss = 0.0;
    std::vector<std::vector<float>> grad_e(N * M,
                                           std::vector<float>(out, 0.0f));
    for (std::size_t j = 0; j < N; ++j) {
      for (std::size_t i = 0; i < M; ++i) {
        const std::size_t u = j * M + i;
        // Similarities to every centroid.
        std::vector<float> s(N);
        float max_s = -1e30f;
        for (std::size_t k = 0; k < N; ++k) {
          s[k] = kW * Dot(emb[u], cent[k]) + kB;
          max_s = std::max(max_s, s[k]);
        }
        double denom = 0.0;
        for (std::size_t k = 0; k < N; ++k)
          denom += std::exp(static_cast<double>(s[k] - max_s));
        loss += -(s[j] - max_s) + std::log(denom);
        // dL/ds_k = softmax_k - [k == j]
        for (std::size_t k = 0; k < N; ++k) {
          const float p = static_cast<float>(
              std::exp(static_cast<double>(s[k] - max_s)) / denom);
          const float g = p - (k == j ? 1.0f : 0.0f);
          for (std::size_t d = 0; d < out; ++d) {
            grad_e[u][d] += g * kW * cent[k][d];
          }
        }
      }
    }
    last_loss = static_cast<float>(loss / (N * M));

    // Backprop through L2 normalization and the MLP; accumulate grads.
    std::vector<float> gw1(w1_.size(), 0), gb1(b1_.size(), 0),
        gw2(w2_.size(), 0), gb2(b2_.size(), 0);
    for (std::size_t u = 0; u < N * M; ++u) {
      // d e / d raw: (I - e e^T) / |raw|
      double norm = 0.0;
      for (float v : raw[u]) norm += static_cast<double>(v) * v;
      const float inv_norm =
          static_cast<float>(1.0 / std::max(1e-12, std::sqrt(norm)));
      const float ge_dot_e = Dot(grad_e[u], emb[u]);
      std::vector<float> grad_raw(out);
      for (std::size_t k = 0; k < out; ++k) {
        grad_raw[k] = (grad_e[u][k] - ge_dot_e * emb[u][k]) * inv_norm;
      }
      // Layer 2.
      std::vector<float> grad_hid(h, 0.0f);
      for (std::size_t k = 0; k < out; ++k) {
        gb2[k] += grad_raw[k];
        for (std::size_t j = 0; j < h; ++j) {
          gw2[k * h + j] += grad_raw[k] * hid[u][j];
          grad_hid[j] += grad_raw[k] * w2_[k * h + j];
        }
      }
      // Layer 1 (tanh).
      const auto& x = feats[u];
      for (std::size_t j = 0; j < h; ++j) {
        const float gz = grad_hid[j] * (1.0f - hid[u][j] * hid[u][j]);
        gb1[j] += gz;
        for (std::size_t i = 0; i < in; ++i) {
          gw1[j * in + i] += gz * x[i];
        }
      }
    }

    // SGD with momentum.
    const float lr = options.lr / static_cast<float>(N * M);
    auto update = [lr](std::vector<float>& w, std::vector<float>& m,
                       const std::vector<float>& g) {
      for (std::size_t i = 0; i < w.size(); ++i) {
        m[i] = 0.9f * m[i] + g[i];
        w[i] -= lr * m[i];
      }
    };
    update(w1_, mw1, gw1);
    update(b1_, mb1, gb1);
    update(w2_, mw2, gw2);
    update(b2_, mb2, gb2);

    if (step % 10 == 0) {
      NEC_LOG("encoder",
              options.verbose ? obs::LogLevel::kInfo
                              : obs::LogLevel::kDebug,
              "step %zu loss %.4f", step, static_cast<double>(last_loss));
    }
  }
  return last_loss;
}

void NeuralEncoder::Save(const std::string& path) const {
  nn::TensorMap map;
  auto put = [&map](const char* name, const std::vector<float>& v,
                    std::vector<std::size_t> shape) {
    nn::Tensor t(std::move(shape));
    std::copy(v.begin(), v.end(), t.vec().begin());
    map.emplace(name, std::move(t));
  };
  put("w1", w1_, {config_.hidden, config_.num_mels});
  put("b1", b1_, {config_.hidden});
  put("w2", w2_, {config_.embedding_dim, config_.hidden});
  put("b2", b2_, {config_.embedding_dim});
  nn::SaveTensors(path, map);
}

NeuralEncoder NeuralEncoder::Load(const std::string& path) {
  const nn::TensorMap map = nn::LoadTensors(path);
  Config cfg;
  const nn::Tensor& w1 = map.at("w1");
  const nn::Tensor& w2 = map.at("w2");
  cfg.hidden = w1.dim(0);
  cfg.num_mels = w1.dim(1);
  cfg.embedding_dim = w2.dim(0);
  NeuralEncoder enc(cfg);
  enc.w1_ = w1.vec();
  enc.b1_ = map.at("b1").vec();
  enc.w2_ = w2.vec();
  enc.b2_ = map.at("b2").vec();
  return enc;
}

}  // namespace nec::encoder
