#include "encoder/las.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "dsp/fft.h"
#include "dsp/window.h"

namespace nec::encoder {
namespace {

std::vector<float> LasImpl(const audio::Waveform& wave,
                           const LasConfig& config, float rel_threshold) {
  NEC_CHECK_MSG(!wave.empty(), "LAS of empty waveform");
  const dsp::StftConfig stft{.fft_size = config.fft_size,
                             .win_length = config.win_length,
                             .hop_length = config.hop_length,
                             .window = dsp::WindowType::kHann};
  const dsp::Spectrogram spec = dsp::Stft(wave, stft);
  const std::size_t bins = spec.num_bins();
  std::vector<float> las(bins, 0.0f);

  // Frame energies for the voiced-frame gate.
  std::vector<float> frame_energy(spec.num_frames(), 0.0f);
  float max_energy = 0.0f;
  for (std::size_t t = 0; t < spec.num_frames(); ++t) {
    double acc = 0.0;
    for (std::size_t f = 0; f < bins; ++f) {
      const float m = spec.MagAt(t, f);
      acc += static_cast<double>(m) * m;
    }
    frame_energy[t] = static_cast<float>(acc);
    max_energy = std::max(max_energy, frame_energy[t]);
  }
  const float gate = rel_threshold * rel_threshold * max_energy;

  std::size_t used = 0;
  for (std::size_t t = 0; t < spec.num_frames(); ++t) {
    if (frame_energy[t] < gate) continue;
    for (std::size_t f = 0; f < bins; ++f) {
      las[f] += spec.MagAt(t, f);
    }
    ++used;
  }
  if (used == 0) return las;
  const float inv = 1.0f / static_cast<float>(used);
  for (float& v : las) v *= inv;
  return las;
}

}  // namespace

std::vector<float> LongTimeAverageSpectrum(const audio::Waveform& wave,
                                           const LasConfig& config) {
  return LasImpl(wave, config, 0.0f);
}

std::vector<float> VoicedLas(const audio::Waveform& wave,
                             const LasConfig& config, float rel_threshold) {
  return LasImpl(wave, config, rel_threshold);
}

}  // namespace nec::encoder
