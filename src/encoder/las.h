// Long-time Average Spectrum (LAS) — Eq. 1 of the paper.
//
// LAS averages per-frame FFT magnitudes over an utterance, washing out
// phoneme dynamics and leaving the speaker's timbre pattern (formant
// structure); §III shows intra-speaker LAS Pearson correlation ≈ 0.96 vs
// < 0.75 across speakers. Both d-vector encoders and the Fig. 4/5 benches
// build on this function.
#pragma once

#include <vector>

#include "audio/waveform.h"
#include "dsp/stft.h"

namespace nec::encoder {

/// LAS config: 20 ms frames as in §III ("the duration of a typical phoneme
/// is longer than 20 ms, representing the maximal frame length").
struct LasConfig {
  std::size_t fft_size = 512;
  std::size_t win_length = 320;  ///< 20 ms @ 16 kHz
  std::size_t hop_length = 160;  ///< 10 ms hop
};

/// F(w)_LAS = (1/M) * sum_m |FFT(f_m(t))| over all M frames.
/// Returns fft_size/2 + 1 magnitude bins.
std::vector<float> LongTimeAverageSpectrum(const audio::Waveform& wave,
                                           const LasConfig& config = {});

/// LAS restricted to voiced/energetic frames: frames whose RMS is below
/// `rel_threshold` * max frame RMS are skipped, so silence does not dilute
/// the average. Used by the encoders.
std::vector<float> VoicedLas(const audio::Waveform& wave,
                             const LasConfig& config = {},
                             float rel_threshold = 0.1f);

}  // namespace nec::encoder
