#include "asr/mfcc.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "dsp/mel.h"
#include "dsp/stft.h"

namespace nec::asr {

MfccFeatures ComputeMfcc(const audio::Waveform& wave,
                         const MfccConfig& config) {
  NEC_CHECK(config.num_coeffs <= config.num_mels);
  const dsp::StftConfig stft{.fft_size = config.fft_size,
                             .win_length = config.win_length,
                             .hop_length = config.hop_length,
                             .window = dsp::WindowType::kHann};
  const dsp::Spectrogram spec = dsp::Stft(wave, stft);
  const std::size_t T = spec.num_frames();
  const std::size_t bins = spec.num_bins();
  const std::size_t base_dim = config.num_coeffs;
  const std::size_t dim = base_dim * (config.append_deltas ? 2 : 1);

  MfccFeatures feats;
  feats.num_frames = T;
  feats.dim = dim;
  feats.data.assign(T * dim, 0.0f);
  if (T == 0) return feats;

  const dsp::MelFilterbank bank(config.num_mels, bins,
                                static_cast<double>(wave.sample_rate()));
  std::vector<float> power(bins);
  std::vector<std::vector<float>> cepstra(T);
  for (std::size_t t = 0; t < T; ++t) {
    double energy = 0.0;
    for (std::size_t f = 0; f < bins; ++f) {
      const float m = spec.MagAt(t, f);
      power[f] = m * m;
      energy += power[f];
    }
    const std::vector<float> mel = bank.Apply(power);
    // Relative log floor, 35 dB below the frame's strongest band. Two
    // jobs: (1) gain invariance — an absolute floor would clamp different
    // bands at different input gains; (2) noise robustness — bands more
    // than 35 dB down carry recorder noise rather than speech, and
    // clamping them to a common floor keeps templates (recorded clean)
    // comparable with queries taken through a noisy microphone chain.
    float max_mel = 0.0f;
    for (float m : mel) max_mel = std::max(max_mel, m);
    const float floor = std::max(max_mel * 3.16e-4f, 1e-20f);
    const std::vector<float> logmel = dsp::LogCompress(mel, floor);
    cepstra[t] = dsp::Dct2(logmel, config.num_coeffs);
    // Replace c0 with log frame energy (standard practice).
    cepstra[t][0] = static_cast<float>(std::log(std::max(energy, 1e-12)));
  }

  if (config.cepstral_mean_norm) {
    // Energy-gated CMN: silent frames sit on the log floor and would bias
    // the mean (and break gain invariance); average speech frames only.
    float max_energy = -1e30f;
    for (const auto& c : cepstra) max_energy = std::max(max_energy, c[0]);
    const float gate = max_energy - 7.0f;  // ~30 dB below the loudest frame
    std::vector<double> mean(base_dim, 0.0);
    std::size_t used = 0;
    for (const auto& c : cepstra) {
      if (c[0] < gate) continue;
      for (std::size_t k = 0; k < base_dim; ++k) mean[k] += c[k];
      ++used;
    }
    if (used > 0) {
      for (double& m : mean) m /= static_cast<double>(used);
      for (auto& c : cepstra) {
        for (std::size_t k = 0; k < base_dim; ++k)
          c[k] -= static_cast<float>(mean[k]);
      }
    }
  }

  for (std::size_t t = 0; t < T; ++t) {
    std::copy(cepstra[t].begin(), cepstra[t].end(),
              feats.data.begin() + t * dim);
  }

  if (config.append_deltas) {
    // Two-frame symmetric difference, clamped at the edges.
    for (std::size_t t = 0; t < T; ++t) {
      const std::size_t prev = t > 0 ? t - 1 : 0;
      const std::size_t next = t + 1 < T ? t + 1 : T - 1;
      for (std::size_t k = 0; k < base_dim; ++k) {
        feats.data[t * dim + base_dim + k] =
            0.5f * (cepstra[next][k] - cepstra[prev][k]);
      }
    }
  }
  return feats;
}

}  // namespace nec::asr
