// MFCC feature extraction for the DTW-based ASR substitute.
#pragma once

#include <cstddef>
#include <vector>

#include "audio/waveform.h"

namespace nec::asr {

struct MfccConfig {
  std::size_t fft_size = 512;
  std::size_t win_length = 400;  ///< 25 ms @ 16 kHz
  std::size_t hop_length = 160;  ///< 10 ms
  std::size_t num_mels = 26;
  std::size_t num_coeffs = 13;
  bool append_deltas = true;     ///< first-order deltas doubles the dim
  bool cepstral_mean_norm = true;
};

/// Frame-major MFCC matrix: frames x dim, where dim = num_coeffs * (1 +
/// append_deltas). c0 is replaced by log frame energy.
struct MfccFeatures {
  std::size_t num_frames = 0;
  std::size_t dim = 0;
  std::vector<float> data;

  const float* frame(std::size_t t) const { return data.data() + t * dim; }
};

MfccFeatures ComputeMfcc(const audio::Waveform& wave,
                         const MfccConfig& config = {});

}  // namespace nec::asr
