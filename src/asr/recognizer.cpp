#include "asr/recognizer.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"
#include "dsp/biquad.h"
#include "common/rng.h"
#include "synth/lexicon.h"
#include "synth/speaker.h"
#include "synth/synthesizer.h"

namespace nec::asr {
namespace {

/// Euclidean distance between two MFCC frames.
double FrameDist(const float* a, const float* b, std::size_t dim) {
  double acc = 0.0;
  for (std::size_t k = 0; k < dim; ++k) {
    const double d = static_cast<double>(a[k]) - b[k];
    acc += d * d;
  }
  return std::sqrt(acc);
}

}  // namespace

WordRecognizer::WordRecognizer(RecognizerOptions options)
    : options_(options) {
  const synth::Lexicon& lex = synth::Lexicon::Default();
  synth::Synthesizer synth({.sample_rate = options_.sample_rate,
                            .edge_silence_ms = 10.0});
  Rng rng(options_.template_seed);

  for (const std::string& word : lex.Words()) {
    for (std::size_t v = 0; v < options_.template_voices; ++v) {
      const synth::SpeakerProfile voice =
          synth::SpeakerProfile::FromSeed(options_.template_seed + v * 101);
      const synth::Utterance utt =
          synth.SynthesizeWords(voice, {word}, rng.NextSeed());
      Template tpl;
      tpl.word = word;
      tpl.feats = ComputeMfcc(utt.wave, options_.mfcc);
      if (tpl.feats.num_frames >= 3) templates_.push_back(std::move(tpl));
    }
  }
  NEC_CHECK_MSG(!templates_.empty(), "recognizer built with no templates");
}

double WordRecognizer::DtwDistance(const MfccFeatures& a,
                                   std::size_t a_begin, std::size_t a_end,
                                   const Template& tpl) const {
  const std::size_t n = a_end - a_begin;           // query frames
  const std::size_t m = tpl.feats.num_frames;       // template frames
  NEC_CHECK(n >= 1 && m >= 1 && a.dim == tpl.feats.dim);

  const std::size_t band = std::max<std::size_t>(
      3, static_cast<std::size_t>(options_.dtw_band * m) +
             (n > m ? n - m : m - n));
  constexpr double kInf = std::numeric_limits<double>::infinity();

  std::vector<double> prev(m + 1, kInf), cur(m + 1, kInf);
  prev[0] = 0.0;
  for (std::size_t i = 1; i <= n; ++i) {
    std::fill(cur.begin(), cur.end(), kInf);
    // Sakoe-Chiba band around the diagonal.
    const double center = static_cast<double>(i) * m / n;
    const std::size_t j_lo = center > band ? static_cast<std::size_t>(center - band) : 1;
    const std::size_t j_hi =
        std::min<std::size_t>(m, static_cast<std::size_t>(center + band));
    for (std::size_t j = std::max<std::size_t>(1, j_lo); j <= j_hi; ++j) {
      const double d = FrameDist(a.frame(a_begin + i - 1),
                                 tpl.feats.frame(j - 1), a.dim);
      const double best =
          std::min({prev[j], prev[j - 1], cur[j - 1]});
      if (best < kInf) cur[j] = d + best;
    }
    std::swap(prev, cur);
  }
  const double total = prev[m];
  if (!std::isfinite(total)) return kInf;
  // Normalize by path length and feature dimension so the rejection
  // threshold is scale-free.
  return total / (static_cast<double>(n + m) *
                  std::sqrt(static_cast<double>(a.dim)));
}

std::vector<RecognizedWord> WordRecognizer::Recognize(
    const audio::Waveform& wave) const {
  std::vector<RecognizedWord> out;
  if (wave.empty()) return out;

  const MfccFeatures feats = ComputeMfcc(wave, options_.mfcc);
  if (feats.num_frames < 3) return out;
  const std::size_t hop = options_.mfcc.hop_length;

  // --- Endpoint detection on frame RMS of a high-passed copy: continuous
  // low-frequency noise (vehicle rumble, room hum) would otherwise hold
  // every frame above the gate and merge the whole clip into one segment.
  audio::Waveform gated = wave;
  dsp::Biquad hp = dsp::DesignHighPass(220.0, options_.sample_rate);
  hp.ProcessBuffer(gated.samples());
  const std::size_t T = feats.num_frames;
  std::vector<float> frame_rms(T, 0.0f);
  for (std::size_t t = 0; t < T; ++t) {
    const std::size_t s0 = t * hop;
    const std::size_t s1 =
        std::min(gated.size(), s0 + options_.mfcc.win_length);
    double acc = 0.0;
    for (std::size_t s = s0; s < s1; ++s)
      acc += static_cast<double>(gated[s]) * gated[s];
    frame_rms[t] =
        static_cast<float>(std::sqrt(acc / std::max<std::size_t>(1, s1 - s0)));
  }
  // Gate relative to the loud-speech level (95th percentile), which is
  // robust both for mostly-silent clips and continuous speech.
  std::vector<float> sorted = frame_rms;
  std::sort(sorted.begin(), sorted.end());
  const float p95 = sorted[static_cast<std::size_t>(0.95 * (T - 1))];
  const float gate = std::max(
      static_cast<float>(options_.energy_gate_factor) * p95, 1e-4f);

  const std::size_t min_frames = std::max<std::size_t>(
      2, static_cast<std::size_t>(options_.min_word_s *
                                  options_.sample_rate / hop));
  const std::size_t max_frames = static_cast<std::size_t>(
      options_.max_word_s * options_.sample_rate / hop);
  // Allow this many low-energy frames inside a word before closing it
  // (stop closures are silent but word-internal).
  constexpr std::size_t kHangover = 4;

  std::vector<std::pair<std::size_t, std::size_t>> segments;
  std::size_t seg_start = 0, low_run = 0;
  bool in_seg = false;
  for (std::size_t t = 0; t < T; ++t) {
    const bool active = frame_rms[t] > gate;
    if (!in_seg && active) {
      in_seg = true;
      seg_start = t;
      low_run = 0;
    } else if (in_seg) {
      if (active) {
        low_run = 0;
      } else if (++low_run > kHangover) {
        const std::size_t seg_end = t - low_run + 1;
        if (seg_end - seg_start >= min_frames)
          segments.emplace_back(seg_start, seg_end);
        in_seg = false;
      }
    }
  }
  if (in_seg && T - seg_start >= min_frames)
    segments.emplace_back(seg_start, T);

  // Split implausibly long segments (merged words) at their weakest
  // interior frame, recursively.
  std::vector<std::pair<std::size_t, std::size_t>> final_segments;
  std::vector<std::pair<std::size_t, std::size_t>> stack(segments.rbegin(),
                                                         segments.rend());
  while (!stack.empty()) {
    auto [s0, s1] = stack.back();
    stack.pop_back();
    if (s1 - s0 <= max_frames) {
      final_segments.emplace_back(s0, s1);
      continue;
    }
    // Weakest frame in the middle half.
    const std::size_t lo = s0 + (s1 - s0) / 4;
    const std::size_t hi = s1 - (s1 - s0) / 4;
    std::size_t split = lo;
    for (std::size_t t = lo; t < hi; ++t) {
      if (frame_rms[t] < frame_rms[split]) split = t;
    }
    if (split - s0 >= min_frames) stack.emplace_back(s0, split);
    if (s1 - split >= min_frames) stack.emplace_back(split, s1);
  }
  std::sort(final_segments.begin(), final_segments.end());

  // --- DTW-match each segment against the template store.
  for (const auto& [s0, s1] : final_segments) {
    const std::size_t seg_len = s1 - s0;
    double best = std::numeric_limits<double>::infinity();
    const Template* best_tpl = nullptr;
    for (const Template& tpl : templates_) {
      // Length pruning: skip hopeless length ratios.
      const double ratio =
          static_cast<double>(seg_len) / tpl.feats.num_frames;
      if (ratio < 0.45 || ratio > 2.2) continue;
      const double d = DtwDistance(feats, s0, s1, tpl);
      if (d < best) {
        best = d;
        best_tpl = &tpl;
      }
    }
    if (best_tpl != nullptr && best <= options_.rejection_threshold) {
      RecognizedWord rw;
      rw.word = best_tpl->word;
      rw.start_sample = s0 * hop;
      rw.end_sample = s1 * hop;
      rw.distance = best;
      out.push_back(std::move(rw));
    }
  }
  return out;
}

std::vector<std::string> WordRecognizer::Transcribe(
    const audio::Waveform& wave) const {
  std::vector<std::string> words;
  for (const RecognizedWord& rw : Recognize(wave)) words.push_back(rw.word);
  return words;
}

double WordErrorRate(const std::vector<std::string>& reference,
                     const std::vector<std::string>& hypothesis) {
  const std::size_t n = reference.size(), m = hypothesis.size();
  if (n == 0) return m == 0 ? 0.0 : static_cast<double>(m);
  // Levenshtein on words.
  std::vector<std::size_t> prev(m + 1), cur(m + 1);
  for (std::size_t j = 0; j <= m; ++j) prev[j] = j;
  for (std::size_t i = 1; i <= n; ++i) {
    cur[0] = i;
    for (std::size_t j = 1; j <= m; ++j) {
      const std::size_t sub =
          prev[j - 1] + (reference[i - 1] == hypothesis[j - 1] ? 0 : 1);
      cur[j] = std::min({sub, prev[j] + 1, cur[j - 1] + 1});
    }
    std::swap(prev, cur);
  }
  return static_cast<double>(prev[m]) / static_cast<double>(n);
}

}  // namespace nec::asr
