// Isolated-word speech recognizer — the Google speech-to-text substitute.
//
// Classic template matching: the recognizer holds MFCC templates for every
// lexicon word (synthesized by a small set of "canonical" voices), segments
// an input recording into word-like islands with an adaptive energy
// endpoint detector, and labels each island with the dynamic-time-warping
// nearest template (rejecting islands that match nothing well → deletions;
// noise islands that match something → insertions, which is how WER can
// exceed 100% as in the paper's Fig. 11).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "asr/mfcc.h"
#include "audio/waveform.h"

namespace nec::asr {

struct RecognizerOptions {
  int sample_rate = 16000;
  /// Number of canonical template voices per word.
  std::size_t template_voices = 5;
  std::uint64_t template_seed = 4242;
  /// DTW distance above which a segment is rejected (no output).
  double rejection_threshold = 2.1;
  /// Sakoe-Chiba band half-width as a fraction of template length.
  double dtw_band = 0.35;
  /// Endpoint detector: segment if frame RMS exceeds this fraction of the
  /// utterance's loud-speech (95th percentile) RMS.
  double energy_gate_factor = 0.08;
  /// Minimum / maximum plausible word length in seconds.
  double min_word_s = 0.08;
  double max_word_s = 1.2;
  MfccConfig mfcc;
};

struct RecognizedWord {
  std::string word;
  std::size_t start_sample = 0;
  std::size_t end_sample = 0;
  double distance = 0.0;  ///< normalized DTW distance of the best match
};

class WordRecognizer {
 public:
  /// Builds templates for the full default lexicon. Construction
  /// synthesizes template_voices x |lexicon| clips (cached per instance).
  explicit WordRecognizer(RecognizerOptions options = {});

  /// Recognizes a recording into a word sequence.
  std::vector<RecognizedWord> Recognize(const audio::Waveform& wave) const;

  /// Convenience: just the word strings.
  std::vector<std::string> Transcribe(const audio::Waveform& wave) const;

  std::size_t vocabulary_size() const { return templates_.size(); }

 private:
  struct Template {
    std::string word;
    MfccFeatures feats;
  };

  double DtwDistance(const MfccFeatures& a, std::size_t a_begin,
                     std::size_t a_end, const Template& tpl) const;

  RecognizerOptions options_;
  std::vector<Template> templates_;
};

/// Word error rate: (substitutions + deletions + insertions) / |reference|.
/// Can exceed 1.0 when the hypothesis hallucinates words (the paper reports
/// WER up to ~2.0 for jammed audio).
double WordErrorRate(const std::vector<std::string>& reference,
                     const std::vector<std::string>& hypothesis);

}  // namespace nec::asr
