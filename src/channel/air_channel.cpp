#include "channel/air_channel.h"

#include <algorithm>
#include <cmath>

#include "audio/level.h"
#include "common/check.h"

namespace nec::channel {

double AirAbsorptionDbPerM(double f_hz) {
  // Quadratic fit through ISO 9613-1 values at 20 °C / 50 % RH:
  // ~0.005 dB/m @ 1 kHz, ~0.03 @ 4 kHz, ~0.1 @ 8 kHz, ~1.1 @ 25 kHz,
  // ~1.6 @ 30 kHz.
  return 0.003 + 1.75e-9 * f_hz * f_hz;
}

AirChannel::AirChannel(const AirChannelConfig& config) : config_(config) {
  NEC_CHECK_MSG(config_.distance_m > 0.0, "distance must be positive");
  NEC_CHECK_MSG(config_.ref_distance_m > 0.0,
                "reference distance must be positive");
  NEC_CHECK(config_.speed_of_sound_m_s > 100.0);
}

double AirChannel::Gain() const {
  const double d = std::max(config_.distance_m, config_.ref_distance_m);
  const double spreading = config_.ref_distance_m / d;
  const double absorption_db =
      AirAbsorptionDbPerM(config_.absorption_ref_hz) *
      (d - config_.ref_distance_m);
  return spreading * audio::DbToAmplitude(-absorption_db);
}

std::size_t AirChannel::DelaySamples(int sample_rate) const {
  return static_cast<std::size_t>(
      std::llround(DelaySeconds() * sample_rate));
}

double AirChannel::DelaySeconds() const {
  return config_.distance_m / config_.speed_of_sound_m_s;
}

audio::Waveform AirChannel::Propagate(const audio::Waveform& source) const {
  const std::size_t delay = DelaySamples(source.sample_rate());
  const float gain = static_cast<float>(Gain());
  audio::Waveform out(source.sample_rate(), delay + source.size());
  for (std::size_t i = 0; i < source.size(); ++i) {
    out[delay + i] = gain * source[i];
  }
  return out;
}

}  // namespace nec::channel
