#include "channel/modulation.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "common/check.h"
#include "dsp/biquad.h"
#include "dsp/resample.h"

namespace nec::channel {

void ModulateAmInto(const audio::Waveform& baseband,
                    const ModulationConfig& config, dsp::ResamplerPlan& plan,
                    audio::Waveform& out) {
  NEC_CHECK_MSG(config.carrier_hz > 20000.0 &&
                    config.carrier_hz < 0.45 * config.air_sample_rate,
                "carrier " << config.carrier_hz
                           << " Hz outside the inaudible/supported band");
  NEC_CHECK_MSG(config.alpha > 0.0, "alpha must be positive");

  dsp::ResampleInto(baseband, config.air_sample_rate, plan, out);
  if (config.reference_peak > 0.0) {
    // Fixed stream-wide gain: every chunk of a stream maps amplitude to
    // envelope identically, so the emitted power coefficient is stable.
    // Resampler overshoot (or chunks louder than the reference) clamps to
    // the |m| <= 1 modulation-index invariant instead of re-normalizing.
    const float scale = static_cast<float>(1.0 / config.reference_peak);
    for (float& s : out.samples()) s = std::clamp(s * scale, -1.0f, 1.0f);
  } else {
    const float peak = out.Peak();
    if (peak > 0.0f) out.Scale(1.0f / peak);  // |m| <= 1
  }

  const double w = 2.0 * std::numbers::pi * config.carrier_hz /
                   config.air_sample_rate;
  const double norm = config.peak / (1.0 + config.alpha);
  for (std::size_t i = 0; i < out.size(); ++i) {
    const double carrier = std::cos(w * static_cast<double>(i));
    out[i] = static_cast<float>(
        (static_cast<double>(out[i]) + config.alpha) * carrier * norm);
  }
}

audio::Waveform ModulateAm(const audio::Waveform& baseband,
                           const ModulationConfig& config) {
  dsp::ResamplerPlan plan;
  audio::Waveform out;
  ModulateAmInto(baseband, config, plan, out);
  return out;
}

audio::Waveform DemodulateAm(const audio::Waveform& passband,
                             double carrier_hz, int target_rate) {
  // Coherent demodulation shifts the upper sideband to carrier + bw where
  // bw = target_rate/2 is the recovered baseband's bandwidth. The whole
  // sideband — not just the carrier — must sit below Nyquist, or it folds
  // back into the audio band before the low-pass can reject it.
  NEC_CHECK_MSG(
      passband.sample_rate() > 2.0 * (carrier_hz + 0.5 * target_rate),
      "passband rate " << passband.sample_rate()
                       << " Hz cannot carry the upper sideband of a "
                       << carrier_hz << " Hz carrier with " << target_rate
                       << " Hz baseband");
  audio::Waveform mixed = passband;
  const double w =
      2.0 * std::numbers::pi * carrier_hz / passband.sample_rate();
  for (std::size_t i = 0; i < mixed.size(); ++i) {
    mixed[i] = static_cast<float>(
        2.0 * mixed[i] * std::cos(w * static_cast<double>(i)));
  }
  auto lp = dsp::DesignButterworthLowPass(
      8, 0.4 * target_rate, passband.sample_rate());
  lp.ProcessBuffer(mixed.samples());
  return dsp::Resample(mixed, target_rate);
}

}  // namespace nec::channel
