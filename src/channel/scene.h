// Acoustic scene composition: places audible speakers and ultrasonic
// emitters at distances from a recorder and renders what the recorder's
// microphone captures.
//
// This is the simulation counterpart of the paper's Figure 10 test bed
// (loudspeaker playing mixed audio + Vifa ultrasonic speaker + smartphone
// recorder) and of Figure 12's in-the-wild layout (Bob wearing NEC, Alice
// recording at 0.5–3 m).
#pragma once

#include <cstdint>
#include <vector>

#include "audio/waveform.h"
#include "channel/air_channel.h"
#include "channel/directivity.h"
#include "channel/microphone.h"
#include "channel/modulation.h"

namespace nec::channel {

/// An audible source (speech or noise) at a distance from the recorder.
/// `spl_at_ref_db` is the source loudness measured at the channel reference
/// distance (5 cm — how the paper calibrates its 77 dB_SPL speakers).
struct AudibleSource {
  const audio::Waveform* wave = nullptr;  ///< 16 kHz baseband
  double distance_m = 1.0;
  double spl_at_ref_db = 77.0;
  /// Extra start offset in seconds (emulates processing latency).
  double start_offset_s = 0.0;
};

/// An ultrasonic emitter playing an already-modulated waveform.
struct UltrasoundSource {
  const audio::Waveform* wave = nullptr;  ///< modulated, air sample rate
  double distance_m = 1.0;
  double spl_at_ref_db = 110.0;
  double carrier_hz = 27000.0;  ///< for the absorption model
  double start_offset_s = 0.0;
  /// Angle between the emitter's axis and the direction to this recorder
  /// (0 = aimed straight at it, 180 = recorder directly behind).
  double emitter_angle_deg = 0.0;
  DirectivityPattern directivity = DirectivityPattern::Omni();
};

struct SceneOptions {
  int air_sample_rate = kAirSampleRate;
  double full_scale_db_spl = 94.0;
  double ref_distance_m = 0.05;
};

class SceneSimulator {
 public:
  explicit SceneSimulator(SceneOptions options = {});

  /// Renders the incident pressure field at the recorder position
  /// (air-rate waveform). Sources are individually leveled to their SPL,
  /// delayed and attenuated by their air channels, then superposed.
  audio::Waveform RenderIncident(
      const std::vector<AudibleSource>& audible,
      const std::vector<UltrasoundSource>& ultrasound) const;

  /// Full capture: RenderIncident then MicrophoneModel::Record.
  audio::Waveform Record(const std::vector<AudibleSource>& audible,
                         const std::vector<UltrasoundSource>& ultrasound,
                         const MicrophoneModel& mic) const;

  /// SPL of a source as heard at the recorder (propagation only) — used by
  /// the Fig. 15(a) distance study.
  double SourceSplAtRecorder(double spl_at_ref_db, double distance_m,
                             double representative_hz = 1000.0) const;

  const SceneOptions& options() const { return options_; }

 private:
  SceneOptions options_;
};

}  // namespace nec::channel
