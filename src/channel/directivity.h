// Ultrasonic emitter directivity (§VII "Directional of Ultrasonic
// Speaker").
//
// The paper's integration plan relies on the ultrasound speaker being
// strongly directional: pointed away from NEC's own monitor microphone,
// "the shadow audio is barely sensed by the NEC's monitor as it produces
// limited amplitude in its back direction" — otherwise the live shadow
// would contaminate the monitored mix and corrupt future shadows.
//
// We model the emitter with a smooth axisymmetric pattern parameterized by
// its -3 dB beamwidth and its back-lobe attenuation (Vifa-class dynamic
// ultrasonic speakers are ~20 dB down at the rear).
#pragma once

namespace nec::channel {

struct DirectivityPattern {
  /// Full -3 dB beamwidth in degrees.
  double beamwidth_deg = 60.0;
  /// Attenuation directly behind the emitter (positive dB).
  double back_attenuation_db = 20.0;

  /// Linear gain for a receiver at `angle_deg` off the emitter's axis
  /// (0 = on-axis, 180 = directly behind). Smooth and monotonic in
  /// [0, 180]; exactly -3 dB at beamwidth/2 and -back_attenuation_db at
  /// 180.
  double GainAt(double angle_deg) const;

  /// An idealized omnidirectional source (unit gain everywhere).
  static DirectivityPattern Omni();

  /// A Vifa-like dynamic ultrasonic speaker.
  static DirectivityPattern VifaLike();
};

}  // namespace nec::channel
