// Recorder device profiles — the Table III substitute.
//
// The paper evaluates 8 COTS smartphones whose microphone circuits differ
// in (a) which ultrasonic carrier frequencies they respond to and (b) how
// strong their second-order nonlinearity is; together these determine each
// device's usable carrier band and maximum shadowing distance (0.43 m for
// iPhone X up to 3.72 m for iPad Air 3). We model each device as:
//
//   * an ultrasonic front-end response: a resonant band-pass around
//     `us_resonance_hz` with bandwidth `us_bandwidth_hz` and peak linear
//     gain `us_gain` (the diaphragm + package acoustics),
//   * a polynomial nonlinearity V_out = a1*V + a2*V^2 + a3*V^3 (§IV-C1),
//   * a self-noise floor in dB SPL.
//
// Parameters were chosen so the simulated carrier acceptance bands and the
// *ordering* of max shadowing distances reproduce Table III; absolute
// distances depend on emitter power (see bench_table3_devices).
#pragma once

#include <string>
#include <vector>

namespace nec::channel {

struct DeviceProfile {
  std::string model;
  std::string brand;

  // Table III columns (paper-reported, used as ground truth for shape
  // comparison).
  double paper_carrier_lo_hz = 22000.0;
  double paper_carrier_hi_hz = 30000.0;
  double paper_best_carrier_hz = 27000.0;
  double paper_max_distance_m = 1.0;

  // Simulation parameters.
  double us_resonance_hz = 27000.0;  ///< front-end resonance (≈ best f_c)
  double us_bandwidth_hz = 6000.0;   ///< -10 dB acceptance width
  double us_gain = 1.0;              ///< peak linear gain of the US path
  double a1 = 1.0;                   ///< linear gain
  double a2 = 0.4;                   ///< second-order coefficient
  double a3 = 0.0;                   ///< third-order coefficient
  double noise_floor_db_spl = 30.0;  ///< mic self-noise

  /// Linear ultrasonic front-end gain at frequency `f_hz` (Gaussian-shaped
  /// response; -10 dB at the acceptance band edges).
  double UltrasoundGainAt(double f_hz) const;
};

/// The 8 smartphones of Table III, in the paper's row order.
const std::vector<DeviceProfile>& Table3Devices();

/// Finds a device by model name; throws std::invalid_argument if missing.
const DeviceProfile& FindDevice(const std::string& model);

/// A well-behaved "reference recorder" used by benchmark experiments that
/// are not device studies (strong nonlinearity, wide acceptance band).
DeviceProfile ReferenceRecorder();

/// A recorder with a (near-)ideal linear microphone — the paper's
/// discussion §VII: when the nonlinear effect is absent, NEC is ineffective.
DeviceProfile IdealLinearRecorder();

}  // namespace nec::channel
