#include "channel/reverb.h"

#include <cmath>

#include "common/check.h"

namespace nec::channel {
namespace {

// Schroeder's classic mutually-prime comb delays (seconds) and all-pass
// delays, scaled to the sample rate.
constexpr double kCombDelaysS[] = {0.0297, 0.0371, 0.0411, 0.0437};
constexpr double kAllpassDelaysS[] = {0.005, 0.0017};

}  // namespace

float Reverberator::Comb::Process(float x) {
  const float out = buffer[pos];
  // One-pole damping inside the feedback loop (air/wall HF absorption).
  filter_state = out * (1.0f - damp) + filter_state * damp;
  buffer[pos] = x + filter_state * feedback;
  pos = (pos + 1) % buffer.size();
  return out;
}

float Reverberator::Allpass::Process(float x) {
  const float buffered = buffer[pos];
  const float out = -gain * x + buffered;
  buffer[pos] = x + gain * buffered;
  pos = (pos + 1) % buffer.size();
  return out;
}

Reverberator::Reverberator(int sample_rate, const RoomAcoustics& room)
    : sample_rate_(sample_rate), room_(room) {
  NEC_CHECK_MSG(room.rt60_s > 0.05 && room.rt60_s < 10.0,
                "implausible RT60: " << room.rt60_s);
  NEC_CHECK(room.wet >= 0.0 && room.wet <= 1.0);
  NEC_CHECK(room.damping >= 0.0 && room.damping < 1.0);

  for (double delay_s : kCombDelaysS) {
    Comb comb;
    comb.buffer.assign(
        static_cast<std::size_t>(delay_s * sample_rate) + 1, 0.0f);
    // Feedback for the desired RT60: g = 10^(-3 * delay / RT60).
    comb.feedback = static_cast<float>(
        std::pow(10.0, -3.0 * delay_s / room.rt60_s));
    comb.damp = static_cast<float>(room.damping);
    combs_.push_back(std::move(comb));
  }
  for (double delay_s : kAllpassDelaysS) {
    Allpass ap;
    ap.buffer.assign(
        static_cast<std::size_t>(delay_s * sample_rate) + 1, 0.0f);
    allpasses_.push_back(std::move(ap));
  }
}

audio::Waveform Reverberator::Process(const audio::Waveform& dry) {
  NEC_CHECK(dry.sample_rate() == sample_rate_);
  // Tail: let the room ring out for RT60 after the input ends.
  const std::size_t tail =
      static_cast<std::size_t>(room_.rt60_s * sample_rate_);
  audio::Waveform out(sample_rate_, dry.size() + tail);
  const float wet = static_cast<float>(room_.wet);
  const float dry_gain = 1.0f - wet;

  for (std::size_t i = 0; i < out.size(); ++i) {
    const float x = i < dry.size() ? dry[i] : 0.0f;
    float acc = 0.0f;
    for (Comb& comb : combs_) acc += comb.Process(x);
    acc *= 0.25f;  // average the comb bank
    for (Allpass& ap : allpasses_) acc = ap.Process(acc);
    out[i] = dry_gain * x + wet * acc;
  }
  return out;
}

void Reverberator::Reset() {
  for (Comb& comb : combs_) {
    std::fill(comb.buffer.begin(), comb.buffer.end(), 0.0f);
    comb.filter_state = 0.0f;
    comb.pos = 0;
  }
  for (Allpass& ap : allpasses_) {
    std::fill(ap.buffer.begin(), ap.buffer.end(), 0.0f);
    ap.pos = 0;
  }
}

}  // namespace nec::channel
