#include "channel/scene.h"

#include <algorithm>

#include "audio/level.h"
#include "common/check.h"
#include "dsp/resample.h"

namespace nec::channel {

SceneSimulator::SceneSimulator(SceneOptions options) : options_(options) {
  NEC_CHECK(options_.air_sample_rate >= 96000);
}

audio::Waveform SceneSimulator::RenderIncident(
    const std::vector<AudibleSource>& audible,
    const std::vector<UltrasoundSource>& ultrasound) const {
  const int fs = options_.air_sample_rate;
  const audio::SplScale spl(options_.full_scale_db_spl);
  audio::Waveform incident(fs, std::size_t{1});

  auto mix_in = [&incident](const audio::Waveform& w, std::size_t offset) {
    if (offset + w.size() > incident.size()) {
      incident.ResizeTo(offset + w.size());
    }
    incident.MixIn(w, offset);
  };

  for (const AudibleSource& src : audible) {
    NEC_CHECK_MSG(src.wave != nullptr, "audible source without waveform");
    audio::Waveform up = dsp::Resample(*src.wave, fs);
    const float rms = up.Rms();
    if (rms > 0.0f) {
      up.Scale(static_cast<float>(spl.SplToRms(src.spl_at_ref_db)) / rms);
    }
    AirChannel air({.distance_m = src.distance_m,
                    .ref_distance_m = options_.ref_distance_m,
                    .absorption_ref_hz = 1000.0});
    audio::Waveform arrived = air.Propagate(up);
    mix_in(arrived, static_cast<std::size_t>(src.start_offset_s * fs));
  }

  for (const UltrasoundSource& src : ultrasound) {
    NEC_CHECK_MSG(src.wave != nullptr, "ultrasound source without waveform");
    NEC_CHECK_MSG(src.wave->sample_rate() == fs,
                  "ultrasound source must be pre-modulated at the air rate");
    audio::Waveform leveled = *src.wave;
    const float rms = leveled.Rms();
    if (rms > 0.0f) {
      leveled.Scale(static_cast<float>(spl.SplToRms(src.spl_at_ref_db)) /
                    rms);
    }
    // Emitter directivity: off-axis receivers get the pattern's gain.
    leveled.Scale(static_cast<float>(
        src.directivity.GainAt(src.emitter_angle_deg)));
    AirChannel air({.distance_m = src.distance_m,
                    .ref_distance_m = options_.ref_distance_m,
                    .absorption_ref_hz = src.carrier_hz});
    audio::Waveform arrived = air.Propagate(leveled);
    mix_in(arrived, static_cast<std::size_t>(src.start_offset_s * fs));
  }

  return incident;
}

audio::Waveform SceneSimulator::Record(
    const std::vector<AudibleSource>& audible,
    const std::vector<UltrasoundSource>& ultrasound,
    const MicrophoneModel& mic) const {
  return mic.Record(RenderIncident(audible, ultrasound));
}

double SceneSimulator::SourceSplAtRecorder(double spl_at_ref_db,
                                           double distance_m,
                                           double representative_hz) const {
  AirChannel air({.distance_m = distance_m,
                  .ref_distance_m = options_.ref_distance_m,
                  .absorption_ref_hz = representative_hz});
  return spl_at_ref_db + audio::AmplitudeToDb(air.Gain());
}

}  // namespace nec::channel
