#include "channel/device_profile.h"

#include <cmath>
#include <stdexcept>

namespace nec::channel {
namespace {

DeviceProfile Make(const char* model, const char* brand, double lo_khz,
                   double hi_khz, double best_khz, double max_dist_m,
                   double resonance_khz, double us_gain, double a2,
                   double noise_db) {
  DeviceProfile d;
  d.model = model;
  d.brand = brand;
  d.paper_carrier_lo_hz = lo_khz * 1000.0;
  d.paper_carrier_hi_hz = hi_khz * 1000.0;
  d.paper_best_carrier_hz = best_khz * 1000.0;
  d.paper_max_distance_m = max_dist_m;
  d.us_resonance_hz = resonance_khz * 1000.0;
  d.us_bandwidth_hz = (hi_khz - lo_khz) * 1000.0;
  d.us_gain = us_gain;
  d.a1 = 1.0;
  d.a2 = a2;
  d.a3 = 0.02 * a2;  // weak third-order term, dominated by a2 (paper §IV-C1)
  d.noise_floor_db_spl = noise_db;
  return d;
}

// us_gain and a2 are calibrated so that the *ordering* (and roughly the
// spread) of simulated max shadowing distances matches Table III: the
// demodulated shadow level scales as a2 * (us_gain / d)^2 * 10^(-alpha*d/10),
// so the strength a2*us_gain^2 required for distance d grows like
// d^2 * 10^(alpha*d/10).
//
// Note on iPhone X: the paper prints best carrier 25.3 kHz outside its own
// 27–32 kHz range (likely a typo); we place the simulated resonance at the
// band center 29.5 kHz and keep the paper columns verbatim.
const std::vector<DeviceProfile> kTable3 = {
    Make("Moto Z4", "Motorola", 24, 28, 28.0, 3.20, 28.0, 0.88, 0.75, 31),
    Make("iPhone 7 P", "Apple", 21, 29, 27.8, 0.49, 27.8, 0.17, 0.25, 29),
    Make("iPhone SE2", "Apple", 23, 28, 25.2, 1.77, 25.2, 0.50, 0.50, 29),
    Make("iPhone X", "Apple", 27, 32, 25.3, 0.43, 29.5, 0.15, 0.22, 28),
    Make("iPad Air 3", "Apple", 22, 31, 28.0, 3.72, 28.0, 1.00, 0.90, 30),
    Make("Mi 8 Lite", "Xiaomi", 24, 32, 27.4, 1.65, 27.4, 0.47, 0.47, 32),
    Make("Pocophone", "Xiaomi", 22, 29, 26.3, 0.70, 26.3, 0.22, 0.30, 32),
    Make("Galaxy S9", "Samsung", 25, 31, 27.2, 3.64, 27.2, 1.00, 0.85, 30),
};

}  // namespace

double DeviceProfile::UltrasoundGainAt(double f_hz) const {
  // Gaussian response, -10 dB at +/- us_bandwidth/2 from resonance.
  const double half = us_bandwidth_hz / 2.0;
  const double sigma = half / 1.073;  // 8.686*(half/sigma)^2 = 10 dB
  const double x = (f_hz - us_resonance_hz) / sigma;
  return us_gain * std::exp(-x * x);
}

const std::vector<DeviceProfile>& Table3Devices() { return kTable3; }

const DeviceProfile& FindDevice(const std::string& model) {
  for (const DeviceProfile& d : kTable3) {
    if (d.model == model) return d;
  }
  throw std::invalid_argument("unknown device model: " + model);
}

DeviceProfile ReferenceRecorder() {
  DeviceProfile d;
  d.model = "Reference";
  d.brand = "nec-sim";
  d.us_resonance_hz = 27000.0;
  d.us_bandwidth_hz = 10000.0;
  d.us_gain = 1.0;
  d.a1 = 1.0;
  d.a2 = 0.8;
  d.a3 = 0.015;
  d.noise_floor_db_spl = 28.0;
  d.paper_carrier_lo_hz = 22000.0;
  d.paper_carrier_hi_hz = 32000.0;
  d.paper_best_carrier_hz = 27000.0;
  return d;
}

DeviceProfile IdealLinearRecorder() {
  DeviceProfile d = ReferenceRecorder();
  d.model = "IdealLinear";
  d.a2 = 0.0;
  d.a3 = 0.0;
  return d;
}

}  // namespace nec::channel
