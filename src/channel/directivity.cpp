#include "channel/directivity.h"

#include <algorithm>
#include <cmath>
#include <numbers>

namespace nec::channel {

double DirectivityPattern::GainAt(double angle_deg) const {
  if (back_attenuation_db <= 0.0) return 1.0;
  const double angle =
      std::clamp(std::abs(angle_deg), 0.0, 180.0) * std::numbers::pi / 180.0;
  // Attenuation profile: att(θ) = A * s(θ)^q with s(θ) = (1 - cos θ)/2,
  // which runs smoothly 0 → 1 over [0°, 180°]. The exponent q places the
  // -3 dB point at half the beamwidth.
  const double half_bw =
      std::clamp(beamwidth_deg, 1.0, 359.0) / 2.0 * std::numbers::pi / 180.0;
  const double s_bw = (1.0 - std::cos(half_bw)) / 2.0;
  const double q =
      std::log(3.0 / back_attenuation_db) / std::log(std::max(s_bw, 1e-9));
  const double s = (1.0 - std::cos(angle)) / 2.0;
  const double att_db = back_attenuation_db * std::pow(s, q);
  return std::pow(10.0, -att_db / 20.0);
}

DirectivityPattern DirectivityPattern::Omni() {
  return {.beamwidth_deg = 360.0, .back_attenuation_db = 0.0};
}

DirectivityPattern DirectivityPattern::VifaLike() {
  return {.beamwidth_deg = 55.0, .back_attenuation_db = 22.0};
}

}  // namespace nec::channel
