// Room reverberation (Schroeder reverberator).
//
// The paper's measurements happen in real rooms: its Fig. 15(a) SPL at 5 m
// (43 dB) sits ~6 dB above the free-field prediction because of
// reflections, and §VI-A's "real attack scenario" is an office. The scene
// simulator is free-field by default; this module adds a parametric room
// (classic Schroeder topology: four parallel feedback combs + two series
// all-passes) so robustness of the overshadowing under reverberation can
// be studied (bench/EXPERIMENTS.md). Reflections arrive late and
// decorrelated — they smear the shadow/voice alignment, which is exactly
// the stress the study needs.
#pragma once

#include "audio/waveform.h"

namespace nec::channel {

struct RoomAcoustics {
  /// RT60 reverberation time in seconds (office ~0.4, cafe ~0.6).
  double rt60_s = 0.4;
  /// Wet/dry mix in [0, 1] at the listening position.
  double wet = 0.25;
  /// High-frequency damping per comb pass in [0, 1); larger = darker room.
  double damping = 0.3;
};

class Reverberator {
 public:
  Reverberator(int sample_rate, const RoomAcoustics& room);

  /// Processes a waveform through the room (stateful; call Reset between
  /// unrelated signals).
  audio::Waveform Process(const audio::Waveform& dry);

  void Reset();

  const RoomAcoustics& room() const { return room_; }

 private:
  struct Comb {
    std::vector<float> buffer;
    std::size_t pos = 0;
    float feedback = 0.0f;
    float damp = 0.0f;
    float filter_state = 0.0f;

    float Process(float x);
  };
  struct Allpass {
    std::vector<float> buffer;
    std::size_t pos = 0;
    float gain = 0.5f;

    float Process(float x);
  };

  int sample_rate_;
  RoomAcoustics room_;
  std::vector<Comb> combs_;
  std::vector<Allpass> allpasses_;
};

}  // namespace nec::channel
