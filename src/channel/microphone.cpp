#include "channel/microphone.h"

#include <algorithm>
#include <cmath>

#include "audio/level.h"
#include "common/check.h"
#include "common/rng.h"
#include "dsp/biquad.h"
#include "dsp/resample.h"

namespace nec::channel {

MicrophoneModel::MicrophoneModel(DeviceProfile device,
                                 MicrophoneOptions options)
    : device_(std::move(device)), options_(options) {
  NEC_CHECK(options_.output_rate >= 8000);
}

audio::Waveform MicrophoneModel::Record(
    const audio::Waveform& incident) const {
  NEC_CHECK_MSG(incident.sample_rate() >= 4 * options_.output_rate,
                "microphone input must be at the air simulation rate");
  const int fs = incident.sample_rate();

  // 1. Band split: x = x_audible + x_ultra. The audible path is a steep
  // low-pass at 14 kHz (speech content lives below 8 kHz; a shallow split
  // would leak 21-30 kHz carriers into the unshaped path and flatten the
  // carrier response the Table III study depends on). The ultrasonic
  // remainder passes the device's resonant front end, approximated by a
  // cascaded band-pass pair at the resonance.
  audio::Waveform us = incident;
  auto lp_split = dsp::DesignButterworthLowPass(8, 14000.0, fs);
  audio::Waveform audible = incident;
  lp_split.ProcessBuffer(audible.samples());
  for (std::size_t i = 0; i < us.size(); ++i) us[i] -= audible[i];

  if (device_.us_gain > 0.0) {
    const double q = device_.us_resonance_hz /
                     std::max(1000.0, device_.us_bandwidth_hz);
    dsp::BiquadChain bp(
        {dsp::DesignBandPass(device_.us_resonance_hz, fs, q),
         dsp::DesignBandPass(device_.us_resonance_hz, fs, q * 0.5)});
    bp.ProcessBuffer(us.samples());
    us.Scale(static_cast<float>(device_.us_gain));
  } else {
    std::fill(us.data().begin(), us.data().end(), 0.0f);
  }

  // 2. Polynomial nonlinearity.
  audio::Waveform v(fs, incident.size());
  const float a1 = static_cast<float>(device_.a1);
  const float a2 = static_cast<float>(device_.a2);
  const float a3 = static_cast<float>(device_.a3);
  for (std::size_t i = 0; i < v.size(); ++i) {
    const float x = audible[i] + us[i];
    v[i] = a1 * x + a2 * x * x + a3 * x * x * x;
  }

  // 3. Anti-alias low-pass + decimation (Resample's polyphase FIR cuts at
  // 0.45 * output_rate).
  audio::Waveform rec = dsp::Resample(v, options_.output_rate);

  // Remove the DC offset the squaring introduces (every real recorder is
  // AC-coupled).
  double mean = 0.0;
  for (float s : rec.samples()) mean += s;
  mean /= std::max<std::size_t>(1, rec.size());
  for (float& s : rec.samples()) s -= static_cast<float>(mean);

  // 4. Automatic gain control (optional; see MicrophoneOptions).
  if (options_.agc_enabled) {
    const double alpha = std::exp(
        -1.0 / (options_.agc_time_constant_s * options_.output_rate));
    double envelope = options_.agc_target_rms;  // start at unity gain
    for (float& s : rec.samples()) {
      envelope = alpha * envelope +
                 (1.0 - alpha) * std::abs(static_cast<double>(s));
      const double gain = std::min(
          options_.agc_max_gain,
          options_.agc_target_rms / std::max(envelope, 1e-9));
      s = static_cast<float>(s * gain);
    }
  }

  // 5. Self-noise + ADC clip.
  Rng rng(options_.noise_seed ^ 0x853C49E6748FEA9BULL);
  const float noise_rms = static_cast<float>(
      audio::SplScale(options_.full_scale_db_spl)
          .SplToRms(device_.noise_floor_db_spl));
  for (float& s : rec.samples()) {
    s += rng.GaussianF(0.0f, noise_rms);
    s = std::clamp(s, -static_cast<float>(options_.clip_level),
                   static_cast<float>(options_.clip_level));
  }
  return rec;
}

}  // namespace nec::channel
