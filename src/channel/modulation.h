// Ultrasonic amplitude modulation (the paper's Broadcast module, Eq. 7/9).
//
// The audible shadow waveform m(t) (16 kHz baseband) is up-converted onto an
// inaudible carrier f_c > 20 kHz:  b(t) = (m(t) + alpha) * cos(2*pi*f_c*t).
// The simulation carries over-the-air signals at 192 kHz so carriers up to
// ~30 kHz and their second-order intermodulation products (2*f_c terms of
// Eq. 8) stay below Nyquist.
#pragma once

#include "audio/waveform.h"
#include "dsp/resample.h"

namespace nec::channel {

/// Default over-the-air simulation rate.
inline constexpr int kAirSampleRate = 192000;

struct ModulationConfig {
  double carrier_hz = 27000.0;  ///< f_c; must be in (20 kHz, fs_air*0.45)
  double alpha = 1.0;           ///< carrier power coefficient of Eq. 7
  int air_sample_rate = kAirSampleRate;
  /// Peak normalization of the emitted waveform (transmit amplitude is set
  /// by the emitter's SPL, not here).
  double peak = 0.95;
  /// Envelope reference amplitude. 0 (default) normalizes by the input's
  /// own peak — correct for whole-utterance modulation. A chunked stream
  /// MUST set an explicit reference instead (one gain for the whole
  /// stream): normalizing each chunk by its own peak boosts quiet chunks
  /// and attenuates loud ones, so the emitted shadow's power coefficient
  /// drifts chunk-to-chunk and no longer matches the calibrated a <= 0.6
  /// cancellation scale. StreamingProcessor latches a stream-wide
  /// reference automatically when this is 0.
  double reference_peak = 0.0;
};

/// AM-modulates a baseband waveform onto the ultrasonic carrier. The input
/// is resampled to `air_sample_rate` first; the envelope is normalized so
/// |m(t)| <= 1 before the (m + alpha) offset, keeping the modulation index
/// at alpha^-1. With `reference_peak > 0` the envelope is scaled by
/// 1/reference_peak instead of the per-call peak (samples beyond the
/// reference clamp to +-1, preserving the modulation-index invariant).
audio::Waveform ModulateAm(const audio::Waveform& baseband,
                           const ModulationConfig& config);

/// ModulateAm into a caller-owned output buffer, reusing a cached resampler
/// plan across calls. Bit-identical to ModulateAm (the plan caches the same
/// FIR taps the plan-free resampler designs per call); with a warm plan and
/// steady-state `out` the per-chunk call performs no allocation. The
/// streaming dispatcher owns one plan per session next to its stream-wide
/// reference-peak latch.
void ModulateAmInto(const audio::Waveform& baseband,
                    const ModulationConfig& config, dsp::ResamplerPlan& plan,
                    audio::Waveform& out);

/// Ideal coherent demodulation — test/diagnostic reference only (real
/// recorders rely on their nonlinearity; see MicrophoneModel). Returns the
/// baseband at `target_rate`. Requires the passband rate to cover the
/// carrier plus the recovered baseband bandwidth (carrier + target_rate/2
/// below Nyquist), not merely the carrier itself — an upper sideband that
/// straddles Nyquist would alias into the demodulated audio.
audio::Waveform DemodulateAm(const audio::Waveform& passband,
                             double carrier_hz, int target_rate);

}  // namespace nec::channel
