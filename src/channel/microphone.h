// COTS microphone model (§IV-C1).
//
// Converts a 192 kHz incident pressure waveform into what the recorder
// actually stores at 16 kHz:
//
//   1. Front-end band split: the ultrasonic part of the incident field is
//      shaped by the device's resonant ultrasound response
//      (DeviceProfile::UltrasoundGainAt); the audible part passes flat.
//   2. Nonlinearity: V_out = a1*V + a2*V^2 + a3*V^3. The a2 term
//      self-demodulates AM ultrasound to baseband (Eq. 8) — this is the
//      physical mechanism NEC exploits.
//   3. The recorder's anti-alias low-pass + decimation to the output rate
//      ("Given the low-pass filter in the COTS microphone, we can eliminate
//      the high frequency components while retaining f_m").
//   4. Self-noise at the device's noise floor and ADC clipping.
#pragma once

#include <cstdint>

#include "audio/waveform.h"
#include "channel/device_profile.h"

namespace nec::channel {

struct MicrophoneOptions {
  int output_rate = 16000;
  /// Seed for the self-noise generator (deterministic recordings).
  std::uint64_t noise_seed = 1;
  /// dB SPL represented by digital RMS 1.0 (see audio::SplScale).
  double full_scale_db_spl = 94.0;
  /// ADC clip level (full scale = 1.0).
  double clip_level = 1.0;
  /// Automatic gain control (most phone capture paths run one). When
  /// enabled, a slow envelope follower normalizes the recording toward
  /// `agc_target_rms`. AGC rescales Bob and the demodulated shadow
  /// together, so overshadowing survives it — a property worth testing,
  /// which is why it is modeled. Default off to keep recordings in
  /// physical units.
  bool agc_enabled = false;
  double agc_target_rms = 0.05;
  /// Envelope time constant in seconds (attack == release here).
  double agc_time_constant_s = 0.3;
  /// Maximum AGC gain (keeps silence from being amplified into noise).
  double agc_max_gain = 40.0;
};

class MicrophoneModel {
 public:
  MicrophoneModel(DeviceProfile device, MicrophoneOptions options = {});

  /// Records an incident waveform (must be at a rate >= 4x the ultrasound
  /// band, normally channel::kAirSampleRate). Returns the 16 kHz recording.
  audio::Waveform Record(const audio::Waveform& incident) const;

  const DeviceProfile& device() const { return device_; }
  const MicrophoneOptions& options() const { return options_; }

 private:
  DeviceProfile device_;
  MicrophoneOptions options_;
};

}  // namespace nec::channel
