// Over-the-air acoustic propagation.
//
// Models the three effects the paper's deployment depends on (§IV-C2,
// §VI-A user study 2):
//   1. propagation delay (d / c, the t_AB/t_BC/t_AC terms of Eq. 10),
//   2. spherical spreading loss, -20*log10(d/d_ref) dB — this is what makes
//      Bob's 77 dB_SPL voice decay to ~43 dB_SPL at 5 m (Fig. 15a),
//   3. atmospheric absorption, which grows ~quadratically with frequency —
//      the reason ultrasound shadowing dies beyond a few meters while
//      audible speech carries on (Table III max distances).
//
// Absorption is applied as a scalar evaluated at a representative frequency
// per source (speech ≈ 1 kHz is negligible; a modulated shadow is narrowband
// around its carrier). The parametric alpha(f) curve approximates
// ISO 9613-1 at 20 °C / 50 % RH.
#pragma once

#include <cstdint>

#include "audio/waveform.h"

namespace nec::channel {

/// Atmospheric absorption coefficient in dB/m at frequency `f_hz`
/// (parametric ISO 9613-1 fit for 20 °C, 50 % relative humidity).
double AirAbsorptionDbPerM(double f_hz);

struct AirChannelConfig {
  double distance_m = 1.0;
  double speed_of_sound_m_s = 343.0;
  /// Distance at which the source level is defined (the paper places its
  /// decibel meter 5 cm from the speaker's lips).
  double ref_distance_m = 0.05;
  /// Representative frequency for the absorption term. Use the carrier
  /// frequency for modulated ultrasound; ~1 kHz for speech.
  double absorption_ref_hz = 1000.0;
};

class AirChannel {
 public:
  explicit AirChannel(const AirChannelConfig& config);

  /// Propagates `source` over the configured distance: delays by
  /// distance/c (prepending silence), applies spreading loss relative to
  /// ref_distance and the absorption term. Output length = input length +
  /// delay samples.
  audio::Waveform Propagate(const audio::Waveform& source) const;

  /// Total gain (linear) applied by this channel: spreading * absorption.
  double Gain() const;

  /// Delay in samples at the given rate.
  std::size_t DelaySamples(int sample_rate) const;

  /// Delay in seconds.
  double DelaySeconds() const;

  const AirChannelConfig& config() const { return config_; }

 private:
  AirChannelConfig config_;
};

}  // namespace nec::channel
