// Second-order IIR sections (biquads) and common designs.
//
// Used throughout the reproduction: RBJ low-pass filters model the
// anti-alias/low-pass stage inside COTS microphones (§IV-C1, Eq. 8: "Given
// the low-pass filter in the COTS microphone..."), and two-pole resonators
// implement the formant filters of the source-filter voice synthesizer.
#pragma once

#include <span>
#include <vector>

namespace nec::dsp {

/// Direct-form-II-transposed biquad: y = b0*x + b1*x1 + b2*x2 - a1*y1 - a2*y2.
class Biquad {
 public:
  Biquad() = default;
  Biquad(double b0, double b1, double b2, double a1, double a2);

  /// Processes one sample.
  float Process(float x);

  /// Processes a buffer in place.
  void ProcessBuffer(std::span<float> buffer);

  /// Clears internal state (z1/z2), keeping coefficients.
  void Reset();

  /// Magnitude response at normalized frequency f (Hz) for rate fs (Hz).
  double MagnitudeAt(double f_hz, double fs_hz) const;

  double b0() const { return b0_; }
  double b1() const { return b1_; }
  double b2() const { return b2_; }
  double a1() const { return a1_; }
  double a2() const { return a2_; }

 private:
  double b0_ = 1.0, b1_ = 0.0, b2_ = 0.0, a1_ = 0.0, a2_ = 0.0;
  double z1_ = 0.0, z2_ = 0.0;
};

/// RBJ cookbook low-pass (Q default: Butterworth).
Biquad DesignLowPass(double cutoff_hz, double fs_hz, double q = 0.70710678);

/// RBJ cookbook high-pass.
Biquad DesignHighPass(double cutoff_hz, double fs_hz, double q = 0.70710678);

/// RBJ cookbook band-pass (constant 0 dB peak gain).
Biquad DesignBandPass(double center_hz, double fs_hz, double q);

/// RBJ cookbook peaking EQ with gain in dB.
Biquad DesignPeaking(double center_hz, double fs_hz, double q, double gain_db);

/// Two-pole resonator at `center_hz` with -3 dB bandwidth `bandwidth_hz`,
/// normalized to unit gain at the resonance. This is the classic formant
/// resonator used in cascade formant synthesis.
Biquad DesignResonator(double center_hz, double bandwidth_hz, double fs_hz);

/// Cascade of biquads with convenience processing.
class BiquadChain {
 public:
  BiquadChain() = default;
  explicit BiquadChain(std::vector<Biquad> sections)
      : sections_(std::move(sections)) {}

  void Add(const Biquad& b) { sections_.push_back(b); }
  float Process(float x);
  void ProcessBuffer(std::span<float> buffer);
  void Reset();
  std::size_t size() const { return sections_.size(); }
  double MagnitudeAt(double f_hz, double fs_hz) const;

 private:
  std::vector<Biquad> sections_;
};

/// N-th order Butterworth low-pass as a cascade of biquads (order must be
/// even). Used for the steep anti-alias filter in the microphone model.
BiquadChain DesignButterworthLowPass(int order, double cutoff_hz,
                                     double fs_hz);

}  // namespace nec::dsp
