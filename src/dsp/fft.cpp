#include "dsp/fft.h"

#include <cmath>
#include <numbers>

#include "common/check.h"

namespace nec::dsp {
namespace {

using Cf = std::complex<float>;
using Cd = std::complex<double>;

// Iterative radix-2 Cooley–Tukey; `data.size()` must be a power of two.
void Radix2(std::vector<Cf>& data, bool inverse) {
  const std::size_t n = data.size();
  if (n <= 1) return;

  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(data[i], data[j]);
  }

  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double angle =
        (inverse ? 2.0 : -2.0) * std::numbers::pi / static_cast<double>(len);
    const Cd wlen(std::cos(angle), std::sin(angle));
    for (std::size_t i = 0; i < n; i += len) {
      Cd w(1.0, 0.0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        const Cd u(data[i + k]);
        const Cd v = Cd(data[i + k + len / 2]) * w;
        data[i + k] = Cf(static_cast<float>((u + v).real()),
                         static_cast<float>((u + v).imag()));
        data[i + k + len / 2] = Cf(static_cast<float>((u - v).real()),
                                   static_cast<float>((u - v).imag()));
        w *= wlen;
      }
    }
  }

  if (inverse) {
    const float inv_n = 1.0f / static_cast<float>(n);
    for (Cf& x : data) x *= inv_n;
  }
}

// Bluestein's chirp-z transform for arbitrary n, implemented with a
// power-of-two convolution. Handles both directions; inverse scales by 1/n.
void Bluestein(std::vector<Cf>& data, bool inverse) {
  const std::size_t n = data.size();
  const double sign = inverse ? 1.0 : -1.0;

  // Chirp factors c_k = exp(sign * i*pi*k^2/n). k^2 mod 2n avoids precision
  // loss for large k.
  std::vector<Cd> chirp(n);
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t k2 = (k * k) % (2 * n);
    const double angle =
        sign * std::numbers::pi * static_cast<double>(k2) / n;
    chirp[k] = Cd(std::cos(angle), std::sin(angle));
  }

  const std::size_t m = NextPowerOfTwo(2 * n - 1);
  std::vector<Cf> a(m, Cf(0, 0)), b(m, Cf(0, 0));
  for (std::size_t k = 0; k < n; ++k) {
    const Cd v = Cd(data[k]) * chirp[k];
    a[k] = Cf(static_cast<float>(v.real()), static_cast<float>(v.imag()));
  }
  for (std::size_t k = 0; k < n; ++k) {
    const Cd v = std::conj(chirp[k]);
    b[k] = Cf(static_cast<float>(v.real()), static_cast<float>(v.imag()));
    if (k != 0)
      b[m - k] = b[k];  // circular symmetry for negative lags
  }

  Radix2(a, false);
  Radix2(b, false);
  for (std::size_t i = 0; i < m; ++i) a[i] *= b[i];
  Radix2(a, true);

  for (std::size_t k = 0; k < n; ++k) {
    Cd v = Cd(a[k]) * chirp[k];
    if (inverse) v /= static_cast<double>(n);
    data[k] = Cf(static_cast<float>(v.real()), static_cast<float>(v.imag()));
  }
}

}  // namespace

bool IsPowerOfTwo(std::size_t n) { return n >= 1 && (n & (n - 1)) == 0; }

std::size_t NextPowerOfTwo(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

void Fft(std::vector<Cf>& data, bool inverse) {
  if (data.empty()) return;
  if (IsPowerOfTwo(data.size())) {
    Radix2(data, inverse);
  } else {
    Bluestein(data, inverse);
  }
}

std::vector<Cf> RealFft(std::span<const float> input, std::size_t nfft) {
  NEC_CHECK_MSG(nfft >= 2, "RealFft needs nfft >= 2");
  std::vector<Cf> buf(nfft, Cf(0, 0));
  const std::size_t n = std::min(input.size(), nfft);
  for (std::size_t i = 0; i < n; ++i) buf[i] = Cf(input[i], 0.0f);
  Fft(buf, /*inverse=*/false);
  buf.resize(nfft / 2 + 1);
  return buf;
}

std::vector<float> InverseRealFft(std::span<const Cf> half_spectrum,
                                  std::size_t nfft) {
  NEC_CHECK_MSG(half_spectrum.size() == nfft / 2 + 1,
                "half spectrum size " << half_spectrum.size()
                                      << " does not match nfft " << nfft);
  std::vector<Cf> full(nfft);
  for (std::size_t i = 0; i < half_spectrum.size(); ++i)
    full[i] = half_spectrum[i];
  for (std::size_t i = half_spectrum.size(); i < nfft; ++i)
    full[i] = std::conj(full[nfft - i]);
  Fft(full, /*inverse=*/true);
  std::vector<float> out(nfft);
  for (std::size_t i = 0; i < nfft; ++i) out[i] = full[i].real();
  return out;
}

}  // namespace nec::dsp
