// Mel-frequency utilities: mel scale conversion, triangular filterbanks,
// log-mel energies and the DCT used by MFCC extraction (asr module).
//
// The speaker encoder condenses spectrogram statistics through a mel
// filterbank (the same front end d-vector systems use), and the DTW-based
// ASR substitute operates on MFCCs.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "dsp/stft.h"

namespace nec::dsp {

/// HTK-style mel scale.
double HzToMel(double hz);
double MelToHz(double mel);

/// Triangular mel filterbank: `num_mels` rows by `num_bins` columns,
/// row-major. Bin frequencies assume an FFT of size (num_bins-1)*2 at
/// `fs_hz`. Filters span [f_lo, f_hi] and are area-normalized (Slaney
/// style) so white noise yields flat band energies.
class MelFilterbank {
 public:
  MelFilterbank(std::size_t num_mels, std::size_t num_bins, double fs_hz,
                double f_lo = 0.0, double f_hi = 0.0 /* 0 = fs/2 */);

  std::size_t num_mels() const { return num_mels_; }
  std::size_t num_bins() const { return num_bins_; }

  /// Applies the bank to one power spectrum frame (length num_bins).
  std::vector<float> Apply(std::span<const float> power_frame) const;

  /// Mel power "spectrogram" of an entire magnitude spectrogram:
  /// frame-major (T, num_mels); input magnitudes are squared to power.
  std::vector<float> ApplyToSpectrogram(const Spectrogram& spec) const;

  float WeightAt(std::size_t mel, std::size_t bin) const {
    return weights_[mel * num_bins_ + bin];
  }

 private:
  std::size_t num_mels_;
  std::size_t num_bins_;
  std::vector<float> weights_;  // (num_mels, num_bins) row-major
};

/// Natural-log compression with floor: log(max(x, floor)).
std::vector<float> LogCompress(std::span<const float> x,
                               float floor = 1e-10f);

/// Type-II DCT matrix application (orthonormal), for MFCC extraction:
/// keeps the first `num_coeffs` coefficients of each length-`num_mels`
/// input row.
std::vector<float> Dct2(std::span<const float> row, std::size_t num_coeffs);

}  // namespace nec::dsp
