#include "dsp/window.h"

#include <cmath>
#include <numbers>

#include "common/check.h"

namespace nec::dsp {

std::vector<float> MakeWindow(WindowType type, std::size_t length,
                              bool periodic) {
  NEC_CHECK_MSG(length >= 1, "window length must be >= 1");
  std::vector<float> w(length, 1.0f);
  if (type == WindowType::kRectangular || length == 1) return w;

  const double denom =
      periodic ? static_cast<double>(length) : static_cast<double>(length - 1);
  for (std::size_t n = 0; n < length; ++n) {
    const double x = 2.0 * std::numbers::pi * static_cast<double>(n) / denom;
    double v = 1.0;
    switch (type) {
      case WindowType::kHann:
        v = 0.5 - 0.5 * std::cos(x);
        break;
      case WindowType::kHamming:
        v = 0.54 - 0.46 * std::cos(x);
        break;
      case WindowType::kBlackman:
        v = 0.42 - 0.5 * std::cos(x) + 0.08 * std::cos(2.0 * x);
        break;
      case WindowType::kRectangular:
        break;
    }
    w[n] = static_cast<float>(v);
  }
  return w;
}

}  // namespace nec::dsp
