#include "dsp/griffin_lim.h"

#include <cmath>
#include <numbers>

#include "common/check.h"
#include "common/rng.h"
#include "obs/trace.h"

namespace nec::dsp {

audio::Waveform GriffinLim(const std::vector<float>& magnitude,
                           std::size_t num_frames, const StftConfig& config,
                           int sample_rate,
                           const GriffinLimOptions& options) {
  NEC_TRACE_SPAN("dsp.griffin_lim");
  const std::size_t F = config.num_bins();
  NEC_CHECK_MSG(magnitude.size() == num_frames * F,
                "magnitude surface shape mismatch: " << magnitude.size()
                                                     << " != " << num_frames
                                                     << "x" << F);
  NEC_CHECK(options.iterations >= 1);

  // Fold signs into the phase and keep |m|.
  Spectrogram work(num_frames, F);
  for (std::size_t i = 0; i < magnitude.size(); ++i) {
    work.mag()[i] = std::abs(magnitude[i]);
  }
  if (options.phase_seed == 0) {
    // zero phase (plus π where the input was negative)
    for (std::size_t i = 0; i < magnitude.size(); ++i) {
      work.phase()[i] =
          magnitude[i] < 0.0f ? static_cast<float>(std::numbers::pi) : 0.0f;
    }
  } else {
    Rng rng(options.phase_seed);
    for (std::size_t i = 0; i < magnitude.size(); ++i) {
      work.phase()[i] = rng.UniformF(
          -static_cast<float>(std::numbers::pi),
          static_cast<float>(std::numbers::pi));
    }
  }

  // One workspace for the whole projection loop: the FFT plan, window and
  // overlap-add scratch are shared by all 2*iterations transforms.
  StftWorkspace ws;
  audio::Waveform wave;
  for (int it = 0; it < options.iterations; ++it) {
    wave = Istft(work, config, sample_rate, options.num_samples, ws);
    const Spectrogram estimate = Stft(wave, config, ws);
    // Keep the target magnitudes; adopt the estimate's phase.
    const std::size_t frames =
        std::min(estimate.num_frames(), work.num_frames());
    for (std::size_t t = 0; t < frames; ++t) {
      for (std::size_t f = 0; f < F; ++f) {
        work.PhaseAt(t, f) = estimate.PhaseAt(t, f);
      }
    }
  }
  return Istft(work, config, sample_rate, options.num_samples, ws);
}

audio::Waveform GriffinLim(const Spectrogram& spec, const StftConfig& config,
                           int sample_rate,
                           const GriffinLimOptions& options) {
  return GriffinLim(spec.mag(), spec.num_frames(), config, sample_rate,
                    options);
}

}  // namespace nec::dsp
