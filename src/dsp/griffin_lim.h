// Griffin-Lim phase reconstruction.
//
// The NEC pipeline renders the shadow spectrogram with the *mixed signal's
// phase* (§IV-C1) — cheap and, at zero arrival offset, phase-coherent with
// the content it must cancel. Griffin-Lim is the classic alternative:
// iterate ISTFT/STFT projections until the magnitude surface gets a
// self-consistent phase. bench_ablation_phase compares the two (plus
// random phase) for overshadowing quality; Griffin-Lim is also generally
// useful for auralizing arbitrary magnitude surfaces.
#pragma once

#include <cstdint>
#include <vector>

#include "audio/waveform.h"
#include "dsp/stft.h"

namespace nec::dsp {

struct GriffinLimOptions {
  int iterations = 30;
  /// Phase init: 0 = zero phase, otherwise seeded random phases.
  std::uint64_t phase_seed = 1;
  /// Output length (0 = natural ISTFT length).
  std::size_t num_samples = 0;
};

/// Reconstructs a waveform whose STFT magnitude approximates `magnitude`
/// (frame-major (T, F) like dsp::Spectrogram, F = config.num_bins()).
/// Negative cells are folded into the phase (|m| with a π offset), so
/// signed shadow surfaces are handled transparently.
audio::Waveform GriffinLim(const std::vector<float>& magnitude,
                           std::size_t num_frames, const StftConfig& config,
                           int sample_rate,
                           const GriffinLimOptions& options = {});

/// Convenience overload for a Spectrogram's magnitudes (phase ignored).
audio::Waveform GriffinLim(const Spectrogram& spec, const StftConfig& config,
                           int sample_rate,
                           const GriffinLimOptions& options = {});

}  // namespace nec::dsp
