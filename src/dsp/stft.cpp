#include "dsp/stft.h"

#include <algorithm>
#include <cmath>
#include <complex>

#include "common/check.h"
#include "dsp/fft.h"

namespace nec::dsp {

std::size_t StftConfig::NumFrames(std::size_t num_samples) const {
  if (num_samples == 0) return 0;
  if (num_samples <= win_length) return 1;
  return 1 + (num_samples - win_length + hop_length - 1) / hop_length;
}

void StftWorkspace::Bind(const StftConfig& config) {
  if (bound_ && bound_fft_size_ == config.fft_size &&
      bound_win_length_ == config.win_length &&
      bound_window_ == config.window) {
    return;
  }
  plan = GetFftPlan(config.fft_size);
  window = MakeWindow(config.window, config.win_length, /*periodic=*/true);
  frame.assign(config.win_length, 0.0f);
  bound_fft_size_ = config.fft_size;
  bound_win_length_ = config.win_length;
  bound_window_ = config.window;
  bound_ = true;
}

Spectrogram::Spectrogram(std::size_t num_frames, std::size_t num_bins)
    : num_frames_(num_frames),
      num_bins_(num_bins),
      mag_(num_frames * num_bins, 0.0f),
      phase_(num_frames * num_bins, 0.0f) {}

double Spectrogram::Energy() const {
  double acc = 0.0;
  for (float m : mag_) acc += static_cast<double>(m) * m;
  return acc;
}

void Spectrogram::Resize(std::size_t num_frames, std::size_t num_bins) {
  num_frames_ = num_frames;
  num_bins_ = num_bins;
  mag_.assign(num_frames * num_bins, 0.0f);
  phase_.assign(num_frames * num_bins, 0.0f);
}

void Stft(const audio::Waveform& wave, const StftConfig& config,
          StftWorkspace& ws, Spectrogram& out) {
  NEC_CHECK_MSG(config.fft_size >= config.win_length,
                "fft_size must be >= win_length");
  NEC_CHECK_MSG(config.hop_length >= 1, "hop_length must be >= 1");

  const std::size_t frames = config.NumFrames(wave.size());
  const std::size_t bins = config.num_bins();
  out.Resize(frames, bins);
  if (frames == 0) return;

  ws.Bind(config);
  const auto samples = wave.samples();

  for (std::size_t t = 0; t < frames; ++t) {
    const std::size_t start = t * config.hop_length;
    for (std::size_t i = 0; i < config.win_length; ++i) {
      const std::size_t src = start + i;
      ws.frame[i] =
          (src < samples.size() ? samples[src] : 0.0f) * ws.window[i];
    }
    RealFft(ws.frame, *ws.plan, ws.half, ws.fft);
    for (std::size_t f = 0; f < bins; ++f) {
      out.MagAt(t, f) = std::abs(ws.half[f]);
      out.PhaseAt(t, f) = std::arg(ws.half[f]);
    }
  }
}

Spectrogram Stft(const audio::Waveform& wave, const StftConfig& config,
                 StftWorkspace& ws) {
  Spectrogram spec;
  Stft(wave, config, ws, spec);
  return spec;
}

Spectrogram Stft(const audio::Waveform& wave, const StftConfig& config) {
  StftWorkspace ws;
  return Stft(wave, config, ws);
}

namespace {

void IstftImplInto(const std::vector<float>& mag,
                   const std::vector<float>& phase, std::size_t num_frames,
                   std::size_t num_bins, const StftConfig& config,
                   int sample_rate, std::size_t num_samples,
                   StftWorkspace& ws, audio::Waveform& out) {
  NEC_CHECK(num_bins == config.num_bins());
  const std::size_t natural_len =
      num_frames == 0 ? 0
                      : (num_frames - 1) * config.hop_length +
                            config.win_length;
  const std::size_t out_len = num_samples > 0 ? num_samples : natural_len;

  out.AssignSilence(sample_rate, std::max<std::size_t>(out_len, 1));
  ws.Bind(config);
  ws.acc.assign(natural_len, 0.0);
  ws.wsum.assign(natural_len, 0.0);
  ws.half.resize(num_bins);

  for (std::size_t t = 0; t < num_frames; ++t) {
    for (std::size_t f = 0; f < num_bins; ++f) {
      // Not std::polar: shadow surfaces carry *signed* magnitudes (a
      // negative cell means anti-phase content) and std::polar is UB for
      // negative rho.
      const float m = mag[t * num_bins + f];
      const float p = phase[t * num_bins + f];
      ws.half[f] = std::complex<float>(m * std::cos(p), m * std::sin(p));
    }
    InverseRealFft(ws.half, *ws.plan, ws.time, ws.fft);
    const std::size_t start = t * config.hop_length;
    for (std::size_t i = 0; i < config.win_length; ++i) {
      ws.acc[start + i] += static_cast<double>(ws.time[i]) * ws.window[i];
      ws.wsum[start + i] +=
          static_cast<double>(ws.window[i]) * ws.window[i];
    }
  }

  // The window-sum envelope is floored: at the clip edges only a window
  // tail covers a sample, and for *inconsistent* magnitude surfaces (e.g.
  // selector shadows, whose frames are not STFTs of any one signal) the
  // frame energy does not vanish there — dividing by a near-zero window
  // sum would blow those samples up by orders of magnitude.
  constexpr double kWsumFloor = 5e-2;
  for (std::size_t i = 0; i < std::min(out_len, natural_len); ++i) {
    out[i] = static_cast<float>(ws.acc[i] / std::max(ws.wsum[i], kWsumFloor));
  }
  out.ResizeTo(out_len);
}

}  // namespace

audio::Waveform Istft(const Spectrogram& spec, const StftConfig& config,
                      int sample_rate, std::size_t num_samples,
                      StftWorkspace& ws) {
  audio::Waveform out;
  IstftImplInto(spec.mag(), spec.phase(), spec.num_frames(),
                spec.num_bins(), config, sample_rate, num_samples, ws, out);
  return out;
}

audio::Waveform Istft(const Spectrogram& spec, const StftConfig& config,
                      int sample_rate, std::size_t num_samples) {
  StftWorkspace ws;
  return Istft(spec, config, sample_rate, num_samples, ws);
}

void IstftWithPhaseInto(const std::vector<float>& mag,
                        const Spectrogram& phase_donor,
                        const StftConfig& config, int sample_rate,
                        std::size_t num_samples, StftWorkspace& ws,
                        audio::Waveform& out) {
  NEC_CHECK_MSG(
      mag.size() == phase_donor.mag().size(),
      "magnitude surface shape must match phase donor spectrogram");
  IstftImplInto(mag, phase_donor.phase(), phase_donor.num_frames(),
                phase_donor.num_bins(), config, sample_rate, num_samples, ws,
                out);
}

audio::Waveform IstftWithPhase(const std::vector<float>& mag,
                               const Spectrogram& phase_donor,
                               const StftConfig& config, int sample_rate,
                               std::size_t num_samples, StftWorkspace& ws) {
  audio::Waveform out;
  IstftWithPhaseInto(mag, phase_donor, config, sample_rate, num_samples, ws,
                     out);
  return out;
}

audio::Waveform IstftWithPhase(const std::vector<float>& mag,
                               const Spectrogram& phase_donor,
                               const StftConfig& config, int sample_rate,
                               std::size_t num_samples) {
  StftWorkspace ws;
  return IstftWithPhase(mag, phase_donor, config, sample_rate, num_samples,
                        ws);
}

}  // namespace nec::dsp
