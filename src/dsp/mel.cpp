#include "dsp/mel.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "common/check.h"

namespace nec::dsp {

double HzToMel(double hz) { return 2595.0 * std::log10(1.0 + hz / 700.0); }

double MelToHz(double mel) {
  return 700.0 * (std::pow(10.0, mel / 2595.0) - 1.0);
}

MelFilterbank::MelFilterbank(std::size_t num_mels, std::size_t num_bins,
                             double fs_hz, double f_lo, double f_hi)
    : num_mels_(num_mels),
      num_bins_(num_bins),
      weights_(num_mels * num_bins, 0.0f) {
  NEC_CHECK(num_mels >= 1 && num_bins >= 2);
  if (f_hi <= 0.0) f_hi = fs_hz / 2.0;
  NEC_CHECK_MSG(f_lo >= 0.0 && f_lo < f_hi && f_hi <= fs_hz / 2.0,
                "invalid mel band edges [" << f_lo << ", " << f_hi << "]");

  // num_mels + 2 equally-mel-spaced edge frequencies.
  const double mel_lo = HzToMel(f_lo);
  const double mel_hi = HzToMel(f_hi);
  std::vector<double> edges(num_mels + 2);
  for (std::size_t i = 0; i < edges.size(); ++i) {
    edges[i] = MelToHz(mel_lo + (mel_hi - mel_lo) * static_cast<double>(i) /
                                    (num_mels + 1));
  }

  const double bin_hz = (fs_hz / 2.0) / static_cast<double>(num_bins - 1);
  for (std::size_t m = 0; m < num_mels; ++m) {
    const double left = edges[m], center = edges[m + 1],
                 right = edges[m + 2];
    // Slaney normalization: 2 / bandwidth.
    const double norm = 2.0 / (right - left);
    for (std::size_t b = 0; b < num_bins; ++b) {
      const double f = b * bin_hz;
      double w = 0.0;
      if (f > left && f < center) {
        w = (f - left) / (center - left);
      } else if (f >= center && f < right) {
        w = (right - f) / (right - center);
      }
      weights_[m * num_bins + b] = static_cast<float>(w * norm);
    }
  }
}

std::vector<float> MelFilterbank::Apply(
    std::span<const float> power_frame) const {
  NEC_CHECK_MSG(power_frame.size() == num_bins_,
                "frame has " << power_frame.size() << " bins, expected "
                             << num_bins_);
  std::vector<float> out(num_mels_, 0.0f);
  for (std::size_t m = 0; m < num_mels_; ++m) {
    double acc = 0.0;
    const float* w = &weights_[m * num_bins_];
    for (std::size_t b = 0; b < num_bins_; ++b) {
      acc += static_cast<double>(w[b]) * power_frame[b];
    }
    out[m] = static_cast<float>(acc);
  }
  return out;
}

std::vector<float> MelFilterbank::ApplyToSpectrogram(
    const Spectrogram& spec) const {
  NEC_CHECK(spec.num_bins() == num_bins_);
  std::vector<float> out(spec.num_frames() * num_mels_, 0.0f);
  std::vector<float> power(num_bins_);
  for (std::size_t t = 0; t < spec.num_frames(); ++t) {
    for (std::size_t f = 0; f < num_bins_; ++f) {
      const float m = spec.MagAt(t, f);
      power[f] = m * m;
    }
    const auto mel = Apply(power);
    std::copy(mel.begin(), mel.end(), out.begin() + t * num_mels_);
  }
  return out;
}

std::vector<float> LogCompress(std::span<const float> x, float floor) {
  std::vector<float> out(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    out[i] = std::log(std::max(x[i], floor));
  }
  return out;
}

std::vector<float> Dct2(std::span<const float> row,
                        std::size_t num_coeffs) {
  const std::size_t n = row.size();
  NEC_CHECK(n >= 1 && num_coeffs >= 1 && num_coeffs <= n);
  std::vector<float> out(num_coeffs, 0.0f);
  for (std::size_t k = 0; k < num_coeffs; ++k) {
    double acc = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      acc += row[i] * std::cos(std::numbers::pi * (i + 0.5) * k / n);
    }
    const double scale =
        k == 0 ? std::sqrt(1.0 / n) : std::sqrt(2.0 / n);  // orthonormal
    out[k] = static_cast<float>(acc * scale);
  }
  return out;
}

}  // namespace nec::dsp
