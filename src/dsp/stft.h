// Short-time Fourier transform and its inverse.
//
// Matches the paper's analysis front end (§IV-B1): Hann window, FFT size
// 1200 at 16 kHz (601 bins, 13.31 Hz resolution), window length 400 (25 ms)
// and hop 160 (10 ms; 15 ms overlap). Spectrograms are stored frame-major
// (T, F) — the transposed layout the paper feeds to the selector network.
//
// The streaming hot path calls Stft/Istft once per chunk, transforming
// ~100 frames each; StftWorkspace carries the cached FFT plan, window and
// per-frame scratch buffers across calls so that path performs no per-frame
// allocation. The workspace-free overloads remain for one-shot callers.
#pragma once

#include <complex>
#include <cstddef>
#include <memory>
#include <vector>

#include "audio/waveform.h"
#include "dsp/fft.h"
#include "dsp/window.h"

namespace nec::dsp {

/// STFT parameterization. Defaults mirror the paper's configuration.
struct StftConfig {
  std::size_t fft_size = 1200;   ///< FFT length; bins = fft_size/2 + 1
  std::size_t win_length = 400;  ///< analysis window length in samples
  std::size_t hop_length = 160;  ///< frame advance in samples
  WindowType window = WindowType::kHann;

  std::size_t num_bins() const { return fft_size / 2 + 1; }

  /// Number of frames produced for `num_samples` input samples
  /// (non-centered framing; the final partial frame is zero-padded so any
  /// non-empty input yields at least one frame).
  std::size_t NumFrames(std::size_t num_samples) const;
};

/// Reusable scratch state for repeated forward/inverse STFTs. Binds lazily
/// to the first StftConfig it sees and rebinds transparently if a
/// different configuration comes along. Single-threaded use only; each
/// streaming session owns its own workspace.
struct StftWorkspace {
  /// Ensures plan/window match `config` (called by Stft/Istft internally).
  void Bind(const StftConfig& config);

  std::shared_ptr<const FftPlan> plan;
  std::vector<float> window;
  std::vector<float> frame;                 ///< windowed analysis frame
  std::vector<std::complex<float>> half;    ///< half spectrum per frame
  std::vector<float> time;                  ///< inverse-FFT output per frame
  std::vector<double> acc, wsum;            ///< overlap-add accumulators
  FftScratch fft;

 private:
  std::size_t bound_fft_size_ = 0;
  std::size_t bound_win_length_ = 0;
  WindowType bound_window_ = WindowType::kHann;
  bool bound_ = false;
};

/// Magnitude + phase spectrogram, frame-major: index (t, f) at t*num_bins+f.
class Spectrogram {
 public:
  Spectrogram() = default;
  Spectrogram(std::size_t num_frames, std::size_t num_bins);

  std::size_t num_frames() const { return num_frames_; }
  std::size_t num_bins() const { return num_bins_; }

  float& MagAt(std::size_t t, std::size_t f) {
    return mag_[t * num_bins_ + f];
  }
  float MagAt(std::size_t t, std::size_t f) const {
    return mag_[t * num_bins_ + f];
  }
  float& PhaseAt(std::size_t t, std::size_t f) {
    return phase_[t * num_bins_ + f];
  }
  float PhaseAt(std::size_t t, std::size_t f) const {
    return phase_[t * num_bins_ + f];
  }

  std::vector<float>& mag() { return mag_; }
  const std::vector<float>& mag() const { return mag_; }
  std::vector<float>& phase() { return phase_; }
  const std::vector<float>& phase() const { return phase_; }

  /// Total energy (sum of squared magnitudes).
  double Energy() const;

  /// Re-dimensions in place to `num_frames` x `num_bins`, zero-filling both
  /// surfaces and reusing capacity. Same post-state as constructing a fresh
  /// Spectrogram(num_frames, num_bins), minus the allocations once the
  /// buffers have grown to steady-state size.
  void Resize(std::size_t num_frames, std::size_t num_bins);

 private:
  std::size_t num_frames_ = 0;
  std::size_t num_bins_ = 0;
  std::vector<float> mag_;
  std::vector<float> phase_;
};

/// Forward STFT of a waveform.
Spectrogram Stft(const audio::Waveform& wave, const StftConfig& config);

/// Forward STFT reusing `ws` (allocation-free after the first call).
Spectrogram Stft(const audio::Waveform& wave, const StftConfig& config,
                 StftWorkspace& ws);

/// Forward STFT into a caller-owned spectrogram (resized in place). With a
/// warm `ws` and an `out` that has already seen this frame count, the call
/// performs no allocation — the streaming per-chunk path.
void Stft(const audio::Waveform& wave, const StftConfig& config,
          StftWorkspace& ws, Spectrogram& out);

/// Inverse STFT with windowed overlap-add and window-square normalization.
/// `num_samples` trims/pads the reconstruction to an exact length
/// (0 = natural length).
audio::Waveform Istft(const Spectrogram& spec, const StftConfig& config,
                      int sample_rate, std::size_t num_samples = 0);

/// Inverse STFT reusing `ws`.
audio::Waveform Istft(const Spectrogram& spec, const StftConfig& config,
                      int sample_rate, std::size_t num_samples,
                      StftWorkspace& ws);

/// Reconstructs a waveform from an arbitrary magnitude surface and a donor
/// phase (the overshadowing pipeline reuses the mixed signal's phase for the
/// shadow magnitude, as the paper's ISTFT stage does).
audio::Waveform IstftWithPhase(const std::vector<float>& mag,
                               const Spectrogram& phase_donor,
                               const StftConfig& config, int sample_rate,
                               std::size_t num_samples = 0);

/// IstftWithPhase reusing `ws`.
audio::Waveform IstftWithPhase(const std::vector<float>& mag,
                               const Spectrogram& phase_donor,
                               const StftConfig& config, int sample_rate,
                               std::size_t num_samples, StftWorkspace& ws);

/// IstftWithPhase into a caller-owned waveform (rebound in place; capacity
/// reused, so a warm workspace + steady-state `out` means no allocation).
void IstftWithPhaseInto(const std::vector<float>& mag,
                        const Spectrogram& phase_donor,
                        const StftConfig& config, int sample_rate,
                        std::size_t num_samples, StftWorkspace& ws,
                        audio::Waveform& out);

}  // namespace nec::dsp
