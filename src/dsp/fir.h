// FIR filter design (windowed sinc) and convolution helpers.
//
// The polyphase resampler (resample.h) and the microphone decimation stage
// build on these kernels.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace nec::dsp {

/// Windowed-sinc low-pass FIR design. `num_taps` should be odd for a
/// symmetric (linear-phase) kernel; even counts are bumped up by one.
/// `cutoff_hz` is the -6 dB point. Returns normalized (unit DC gain) taps.
std::vector<float> DesignFirLowPass(std::size_t num_taps, double cutoff_hz,
                                    double fs_hz);

/// Full linear convolution: output length = x.size() + taps.size() - 1.
std::vector<float> Convolve(std::span<const float> x,
                            std::span<const float> taps);

/// "Same"-size convolution centered on the kernel (group-delay
/// compensated): output length = x.size().
std::vector<float> ConvolveSame(std::span<const float> x,
                                std::span<const float> taps);

}  // namespace nec::dsp
