#include "dsp/resample.h"

#include <cmath>
#include <numeric>
#include <vector>

#include "common/check.h"
#include "dsp/fir.h"

namespace nec::dsp {

void ResamplerPlan::Bind(int src, int target, std::size_t tpp) {
  if (src_rate == src && target_rate == target && taps_per_phase == tpp) {
    return;
  }
  const int g = std::gcd(src, target);
  up = static_cast<std::size_t>(target / g);
  down = static_cast<std::size_t>(src / g);

  // Anti-alias / anti-image low-pass at min(src, target)/2, designed at the
  // upsampled rate src*L. Cut slightly below Nyquist for transition band.
  const double fs_up = static_cast<double>(src) * up;
  const double cutoff = 0.45 * std::min(src, target);
  std::size_t num_taps = tpp * std::max(up, down);
  if (num_taps % 2 == 0) ++num_taps;
  taps = DesignFirLowPass(num_taps, cutoff, fs_up);

  src_rate = src;
  target_rate = target;
  taps_per_phase = tpp;
}

namespace {

/// Shared polyphase kernel: both Resample entry points run this exact loop
/// over plan-held taps, so plan-cached and plan-free conversion stay
/// bit-identical by construction.
void PolyphaseFilter(const audio::Waveform& input, const ResamplerPlan& plan,
                     audio::Waveform& out) {
  const std::size_t L = plan.up;
  const std::size_t M = plan.down;
  const std::vector<float>& taps = plan.taps;

  // Polyphase decomposition: tap j belongs to phase j % L. Output sample n
  // lands at upsampled index u = n*M; contribution comes from input samples
  // k with u - k*L inside the kernel. Gain L compensates zero-stuffing loss.
  const std::size_t out_len =
      (input.size() * L + M - 1) / M;  // ceil(input*L/M)
  out.AssignSilence(plan.target_rate, out_len);
  const auto x = input.samples();
  const std::ptrdiff_t delay =
      static_cast<std::ptrdiff_t>(taps.size() / 2);  // group delay
  const float gain = static_cast<float>(L);

  for (std::size_t n = 0; n < out_len; ++n) {
    // Upsampled-domain index of this output sample, shifted by the filter's
    // group delay so output is time-aligned with input.
    const std::ptrdiff_t u = static_cast<std::ptrdiff_t>(n * M) + delay;
    // Find smallest j >= 0 with (u - j) % L == 0 → input index k=(u-j)/L.
    const std::size_t phase = static_cast<std::size_t>(u % L);
    double acc = 0.0;
    for (std::size_t j = phase; j < taps.size(); j += L) {
      const std::ptrdiff_t k = (u - static_cast<std::ptrdiff_t>(j)) /
                               static_cast<std::ptrdiff_t>(L);
      if (k < 0) break;
      if (k >= static_cast<std::ptrdiff_t>(x.size())) continue;
      acc += static_cast<double>(taps[j]) * x[static_cast<std::size_t>(k)];
    }
    out[n] = gain * static_cast<float>(acc);
  }
}

}  // namespace

void ResampleInto(const audio::Waveform& input, int target_rate,
                  ResamplerPlan& plan, audio::Waveform& out,
                  std::size_t taps_per_phase) {
  NEC_CHECK_MSG(target_rate > 0, "target rate must be positive");
  NEC_CHECK_MSG(input.sample_rate() > 0, "input must have a sample rate");
  if (input.sample_rate() == target_rate) {
    out = input;
    return;
  }
  if (input.empty()) {
    out.AssignSilence(target_rate, 0);
    return;
  }
  plan.Bind(input.sample_rate(), target_rate, taps_per_phase);
  PolyphaseFilter(input, plan, out);
}

audio::Waveform Resample(const audio::Waveform& input, int target_rate,
                         std::size_t taps_per_phase) {
  ResamplerPlan plan;
  audio::Waveform out;
  ResampleInto(input, target_rate, plan, out, taps_per_phase);
  return out;
}

}  // namespace nec::dsp
