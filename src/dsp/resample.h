// Rational sample-rate conversion.
//
// The NEC simulation runs the audible world at 16 kHz (the paper's rate)
// and the over-the-air ultrasound channel at 192 kHz so that 24–28 kHz
// carriers and their second-order intermodulation products are represented
// without aliasing. Upsampling by 12 (16k → 192k) and decimating by 12
// (192k → 16k inside the microphone model) are the hot paths; both are
// implemented as efficient polyphase FIR structures.
#pragma once

#include "audio/waveform.h"

namespace nec::dsp {

/// Resamples `input` to `target_rate` with a polyphase windowed-sinc FIR.
/// Exact rational conversion: L/M is derived from target/source rates via
/// gcd. Identity rates return a copy. `taps_per_phase` controls quality
/// (filter length = taps_per_phase * L, group-delay compensated so the
/// output is time-aligned with the input).
audio::Waveform Resample(const audio::Waveform& input, int target_rate,
                         std::size_t taps_per_phase = 24);

}  // namespace nec::dsp
