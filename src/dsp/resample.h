// Rational sample-rate conversion.
//
// The NEC simulation runs the audible world at 16 kHz (the paper's rate)
// and the over-the-air ultrasound channel at 192 kHz so that 24–28 kHz
// carriers and their second-order intermodulation products are represented
// without aliasing. Upsampling by 12 (16k → 192k) and decimating by 12
// (192k → 16k inside the microphone model) are the hot paths; both are
// implemented as efficient polyphase FIR structures.
#pragma once

#include "audio/waveform.h"

namespace nec::dsp {

/// Resamples `input` to `target_rate` with a polyphase windowed-sinc FIR.
/// Exact rational conversion: L/M is derived from target/source rates via
/// gcd. Identity rates return a copy. `taps_per_phase` controls quality
/// (filter length = taps_per_phase * L, group-delay compensated so the
/// output is time-aligned with the input).
audio::Waveform Resample(const audio::Waveform& input, int target_rate,
                         std::size_t taps_per_phase = 24);

/// Cached polyphase filter for a fixed (source rate, target rate,
/// taps_per_phase) conversion. Binds lazily on first use and rebinds if the
/// rates change; the tap values are produced by the exact same design call
/// as the plan-free Resample, so the two paths are bit-identical. Designing
/// the FIR dominates per-call cost (and allocates), so the streaming hot
/// path keeps one plan per modulation direction and reuses it every chunk.
struct ResamplerPlan {
  /// Ensures the cached taps match the conversion (no-op when warm).
  void Bind(int src_rate, int target_rate, std::size_t taps_per_phase);

  int src_rate = 0;
  int target_rate = 0;
  std::size_t taps_per_phase = 0;
  std::size_t up = 0;    ///< L: interpolation factor
  std::size_t down = 0;  ///< M: decimation factor
  std::vector<float> taps;
};

/// Resample into a caller-owned output buffer, reusing `plan`'s cached
/// taps. Bit-identical to the plan-free overload; with a warm plan and a
/// steady-state `out` the call performs no allocation.
void ResampleInto(const audio::Waveform& input, int target_rate,
                  ResamplerPlan& plan, audio::Waveform& out,
                  std::size_t taps_per_phase = 24);

}  // namespace nec::dsp
