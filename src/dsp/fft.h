// Fast Fourier transforms for the NEC library.
//
// The paper's spectrogram uses an FFT size of 1200 (not a power of two), so
// we provide a mixed strategy: an iterative radix-2 Cooley–Tukey kernel for
// power-of-two sizes and Bluestein's chirp-z algorithm for every other size.
// Twiddle factors are computed in double precision; data is stored as
// std::complex<float>, which keeps spectrogram memory compact.
#pragma once

#include <complex>
#include <cstddef>
#include <span>
#include <vector>

namespace nec::dsp {

/// In-place complex FFT of arbitrary size (inverse includes 1/N scaling).
/// Sizes that are powers of two use radix-2; others use Bluestein.
void Fft(std::vector<std::complex<float>>& data, bool inverse = false);

/// Forward real FFT: returns the non-redundant half spectrum of length
/// nfft/2 + 1. `input` is zero-padded (or truncated) to `nfft` samples.
std::vector<std::complex<float>> RealFft(std::span<const float> input,
                                         std::size_t nfft);

/// Inverse of RealFft: reconstructs nfft real samples from a half spectrum
/// of length nfft/2 + 1 (conjugate symmetry is assumed, not checked).
std::vector<float> InverseRealFft(
    std::span<const std::complex<float>> half_spectrum, std::size_t nfft);

/// Returns true if n is a power of two (n >= 1).
bool IsPowerOfTwo(std::size_t n);

/// Smallest power of two >= n.
std::size_t NextPowerOfTwo(std::size_t n);

}  // namespace nec::dsp
