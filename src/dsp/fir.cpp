#include "dsp/fir.h"

#include <cmath>
#include <numbers>

#include "common/check.h"
#include "dsp/window.h"

namespace nec::dsp {

std::vector<float> DesignFirLowPass(std::size_t num_taps, double cutoff_hz,
                                    double fs_hz) {
  NEC_CHECK_MSG(cutoff_hz > 0 && cutoff_hz < fs_hz / 2,
                "FIR cutoff " << cutoff_hz << " out of range for fs "
                              << fs_hz);
  if (num_taps % 2 == 0) ++num_taps;  // force symmetric kernel
  NEC_CHECK(num_taps >= 3);

  const double fc = cutoff_hz / fs_hz;  // normalized (cycles/sample)
  const auto win =
      MakeWindow(WindowType::kBlackman, num_taps, /*periodic=*/false);
  const double mid = static_cast<double>(num_taps - 1) / 2.0;

  std::vector<float> taps(num_taps);
  double sum = 0.0;
  for (std::size_t n = 0; n < num_taps; ++n) {
    const double x = static_cast<double>(n) - mid;
    const double sinc =
        x == 0.0 ? 2.0 * fc
                 : std::sin(2.0 * std::numbers::pi * fc * x) /
                       (std::numbers::pi * x);
    taps[n] = static_cast<float>(sinc * win[n]);
    sum += taps[n];
  }
  // Normalize DC gain to exactly 1.
  for (float& t : taps) t = static_cast<float>(t / sum);
  return taps;
}

std::vector<float> Convolve(std::span<const float> x,
                            std::span<const float> taps) {
  if (x.empty() || taps.empty()) return {};
  std::vector<float> out(x.size() + taps.size() - 1, 0.0f);
  for (std::size_t i = 0; i < x.size(); ++i) {
    const float xi = x[i];
    for (std::size_t j = 0; j < taps.size(); ++j) {
      out[i + j] += xi * taps[j];
    }
  }
  return out;
}

std::vector<float> ConvolveSame(std::span<const float> x,
                                std::span<const float> taps) {
  auto full = Convolve(x, taps);
  const std::size_t offset = taps.size() / 2;
  std::vector<float> out(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) out[i] = full[i + offset];
  return out;
}

}  // namespace nec::dsp
