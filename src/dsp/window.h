// Analysis/synthesis window functions.
//
// The paper's STFT uses a Hann window (Eq. 2). Windows are generated in the
// "periodic" form (denominator N rather than N-1), which is the correct
// choice for STFT perfect reconstruction with overlap-add.
#pragma once

#include <cstddef>
#include <vector>

namespace nec::dsp {

enum class WindowType {
  kRectangular,
  kHann,
  kHamming,
  kBlackman,
};

/// Builds a window of `length` samples. `periodic` selects the DFT-even
/// (periodic) variant used for spectral analysis; false gives the symmetric
/// variant used for filter design.
std::vector<float> MakeWindow(WindowType type, std::size_t length,
                              bool periodic = true);

}  // namespace nec::dsp
