#include "dsp/biquad.h"

#include <cmath>
#include <complex>
#include <numbers>

#include "common/check.h"

namespace nec::dsp {

Biquad::Biquad(double b0, double b1, double b2, double a1, double a2)
    : b0_(b0), b1_(b1), b2_(b2), a1_(a1), a2_(a2) {}

float Biquad::Process(float x) {
  const double in = x;
  const double out = b0_ * in + z1_;
  z1_ = b1_ * in - a1_ * out + z2_;
  z2_ = b2_ * in - a2_ * out;
  return static_cast<float>(out);
}

void Biquad::ProcessBuffer(std::span<float> buffer) {
  for (float& s : buffer) s = Process(s);
}

void Biquad::Reset() { z1_ = z2_ = 0.0; }

double Biquad::MagnitudeAt(double f_hz, double fs_hz) const {
  const double w = 2.0 * std::numbers::pi * f_hz / fs_hz;
  const std::complex<double> z = std::polar(1.0, w);
  const std::complex<double> z1 = 1.0 / z;
  const std::complex<double> z2 = z1 * z1;
  const std::complex<double> num = b0_ + b1_ * z1 + b2_ * z2;
  const std::complex<double> den = 1.0 + a1_ * z1 + a2_ * z2;
  return std::abs(num / den);
}

namespace {

struct RbjCommon {
  double w0, cosw0, sinw0, alpha;
};

RbjCommon Rbj(double f_hz, double fs_hz, double q) {
  NEC_CHECK_MSG(f_hz > 0 && f_hz < fs_hz / 2,
                "filter frequency " << f_hz << " out of range for fs "
                                    << fs_hz);
  NEC_CHECK_MSG(q > 0, "Q must be positive");
  RbjCommon c;
  c.w0 = 2.0 * std::numbers::pi * f_hz / fs_hz;
  c.cosw0 = std::cos(c.w0);
  c.sinw0 = std::sin(c.w0);
  c.alpha = c.sinw0 / (2.0 * q);
  return c;
}

}  // namespace

Biquad DesignLowPass(double cutoff_hz, double fs_hz, double q) {
  const auto c = Rbj(cutoff_hz, fs_hz, q);
  const double a0 = 1.0 + c.alpha;
  return Biquad((1.0 - c.cosw0) / 2.0 / a0, (1.0 - c.cosw0) / a0,
                (1.0 - c.cosw0) / 2.0 / a0, -2.0 * c.cosw0 / a0,
                (1.0 - c.alpha) / a0);
}

Biquad DesignHighPass(double cutoff_hz, double fs_hz, double q) {
  const auto c = Rbj(cutoff_hz, fs_hz, q);
  const double a0 = 1.0 + c.alpha;
  return Biquad((1.0 + c.cosw0) / 2.0 / a0, -(1.0 + c.cosw0) / a0,
                (1.0 + c.cosw0) / 2.0 / a0, -2.0 * c.cosw0 / a0,
                (1.0 - c.alpha) / a0);
}

Biquad DesignBandPass(double center_hz, double fs_hz, double q) {
  const auto c = Rbj(center_hz, fs_hz, q);
  const double a0 = 1.0 + c.alpha;
  return Biquad(c.alpha / a0, 0.0, -c.alpha / a0, -2.0 * c.cosw0 / a0,
                (1.0 - c.alpha) / a0);
}

Biquad DesignPeaking(double center_hz, double fs_hz, double q,
                     double gain_db) {
  const auto c = Rbj(center_hz, fs_hz, q);
  const double A = std::pow(10.0, gain_db / 40.0);
  const double a0 = 1.0 + c.alpha / A;
  return Biquad((1.0 + c.alpha * A) / a0, -2.0 * c.cosw0 / a0,
                (1.0 - c.alpha * A) / a0, -2.0 * c.cosw0 / a0,
                (1.0 - c.alpha / A) / a0);
}

Biquad DesignResonator(double center_hz, double bandwidth_hz, double fs_hz) {
  NEC_CHECK_MSG(center_hz > 0 && center_hz < fs_hz / 2,
                "resonator center " << center_hz << " out of range");
  NEC_CHECK_MSG(bandwidth_hz > 0, "resonator bandwidth must be positive");
  const double r = std::exp(-std::numbers::pi * bandwidth_hz / fs_hz);
  const double theta = 2.0 * std::numbers::pi * center_hz / fs_hz;
  const double a1 = -2.0 * r * std::cos(theta);
  const double a2 = r * r;
  // Normalize to unit gain at the resonance frequency.
  Biquad raw(1.0, 0.0, 0.0, a1, a2);
  const double g = raw.MagnitudeAt(center_hz, fs_hz);
  return Biquad(1.0 / g, 0.0, 0.0, a1, a2);
}

float BiquadChain::Process(float x) {
  for (Biquad& b : sections_) x = b.Process(x);
  return x;
}

void BiquadChain::ProcessBuffer(std::span<float> buffer) {
  for (Biquad& b : sections_) b.ProcessBuffer(buffer);
}

void BiquadChain::Reset() {
  for (Biquad& b : sections_) b.Reset();
}

double BiquadChain::MagnitudeAt(double f_hz, double fs_hz) const {
  double g = 1.0;
  for (const Biquad& b : sections_) g *= b.MagnitudeAt(f_hz, fs_hz);
  return g;
}

BiquadChain DesignButterworthLowPass(int order, double cutoff_hz,
                                     double fs_hz) {
  NEC_CHECK_MSG(order >= 2 && order % 2 == 0,
                "Butterworth order must be even and >= 2");
  BiquadChain chain;
  const int pairs = order / 2;
  for (int k = 0; k < pairs; ++k) {
    // Pole-pair Q values for an order-N Butterworth response.
    const double theta =
        std::numbers::pi * (2.0 * k + 1.0) / (2.0 * order);
    const double q = 1.0 / (2.0 * std::sin(theta));
    chain.Add(DesignLowPass(cutoff_hz, fs_hz, q));
  }
  return chain;
}

}  // namespace nec::dsp
