// Fault taxonomy, degradation ladder, and deterministic fault injection
// for the nec::runtime serving layer (DESIGN.md §5f).
//
// The paper's physical deployment degrades gracefully — a late or weak
// shadow just cancels less of Bob — but a serving process is brittle by
// default: one thrown nec::CheckError inside a strand or the coalescer
// would kill a pool worker or wedge a session. This header defines the
// vocabulary the runtime uses to contain faults at the session boundary:
//
//   * ErrorCategory / SessionError — what went wrong, as a small closed
//     taxonomy so callers and counters can react per class.
//   * SessionState — the session lifecycle (idle → running → faulted →
//     reset); a faulted session sheds input until ResetSession().
//   * DegradeLevel — the graceful-degradation ladder: neural selector →
//     LAS mask fallback → passthrough silence-shadow. Stepping down keeps
//     the stream alive (output cadence preserved) at reduced cancellation
//     quality, mirroring how the physics fails soft.
//   * FaultInjector — a seeded, deterministic injector compiled in
//     always (a single relaxed atomic load when disarmed) that can throw,
//     add latency, or simulate queue saturation at named sites, so the
//     stress suite can drive every containment path on demand.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <span>
#include <stdexcept>
#include <string>

#include "common/rng.h"

namespace nec::runtime {

/// Closed taxonomy of session-level failures.
enum class ErrorCategory {
  kBadInput = 0,      ///< NaN/Inf/absurd audio rejected at Submit
  kInvariant = 1,     ///< an NEC_CHECK (or equivalent) fired mid-chunk
  kDeadlineMiss = 2,  ///< chunk blew the overshadowing budget (§IV-C2)
  kOverload = 3,      ///< queue saturation bounced the caller (kReject)
  kAuthRejected = 4,  ///< wire auth handshake failed (bad/replayed tag)
};
inline constexpr std::size_t kNumErrorCategories = 5;

const char* ErrorCategoryName(ErrorCategory category);

/// The recorded cause of a session fault (or a typed Submit rejection).
struct SessionError {
  ErrorCategory category = ErrorCategory::kInvariant;
  std::string message;
};

/// Session lifecycle. kFaulted is absorbing until ResetSession().
enum class SessionState { kIdle, kRunning, kFaulted };

const char* SessionStateName(SessionState state);

/// Graceful-degradation ladder, best to worst. Values order the ladder:
/// stepping "down" increments the level.
enum class DegradeLevel {
  kNeural = 0,       ///< full paper system (selector DNN)
  kLasFallback = 1,  ///< LAS-mask ablation selector (cheap DSP)
  kSilence = 2,      ///< passthrough silence-shadow (no cancellation)
};
inline constexpr int kNumDegradeLevels = 3;

const char* DegradeLevelName(DegradeLevel level);

// ------------------------------------------------------- input hygiene

/// What a scan/sanitize pass over submitted audio found. `nonfinite`
/// counts NaN/Inf samples; `wild` counts finite samples with |x| beyond
/// the corrupt-amplitude limit (legit processing can exceed [-1, 1], so
/// the limit is deliberately generous — see kWildSampleLimit).
struct SampleScan {
  std::size_t nonfinite = 0;
  std::size_t wild = 0;
  bool clean() const { return nonfinite == 0 && wild == 0; }
  std::size_t total() const { return nonfinite + wild; }
};

/// Finite samples above this magnitude are treated as corrupt (a real
/// capture path never produces them; intermediate DSP stays well below).
inline constexpr float kWildSampleLimit = 4.0f;

/// Counts corrupt samples without modifying anything.
SampleScan ScanSamples(std::span<const float> samples);

/// Repairs corrupt samples in place — NaN/Inf become 0, wild amplitudes
/// clamp to ±1 — and reports what was repaired. Clean samples are never
/// touched, so sanitization preserves bit-exactness for healthy streams.
SampleScan SanitizeSamples(std::span<float> samples);

// ------------------------------------------------------ fault injection

/// Thrown by FaultInjector at an armed site; carries the category the
/// containment layer should record for the faulted session.
class InjectedFault : public std::runtime_error {
 public:
  InjectedFault(ErrorCategory category, const std::string& what)
      : std::runtime_error(what), category_(category) {}
  ErrorCategory category() const { return category_; }

 private:
  ErrorCategory category_;
};

/// Deterministic, seeded fault injector. Compiled in always; every site
/// costs one relaxed atomic load while disarmed. Sites are named strings
/// (e.g. "strand.chunk", "batch.item", "pool.submit") hit by runtime code
/// via OnSite()/SaturateAt(); a site only fires for hits whose key
/// matches its armed Spec, so tests can target exactly one session.
///
/// Determinism: each armed site owns a seeded Rng consumed only by
/// matching hits. A key-filtered site is hit from a single thread at a
/// time (one strand per session; one coalescer), so given the same seed
/// and stream the injection schedule is reproducible.
class FaultInjector {
 public:
  static constexpr std::uint64_t kAnyKey = ~std::uint64_t{0};

  enum class Kind {
    kThrow,     ///< OnSite throws InjectedFault(spec.category)
    kLatency,   ///< OnSite sleeps spec.latency_ms
    kSaturate,  ///< SaturateAt returns true (simulated full queue)
  };

  struct Spec {
    Kind kind = Kind::kThrow;
    /// Category an injected throw models (and records on the session).
    ErrorCategory category = ErrorCategory::kInvariant;
    /// Fire on each matching hit with this probability (seeded Rng).
    double probability = 1.0;
    double latency_ms = 0.0;  ///< kLatency sleep per fired hit
    /// Only hits with this key fire (kAnyKey matches every hit). The
    /// runtime passes the SessionId as the key.
    std::uint64_t key = kAnyKey;
    std::uint64_t skip_first = 0;  ///< let this many matching hits pass
    /// Stop firing after this many injections.
    std::uint64_t limit = ~std::uint64_t{0};
  };

  /// Arms (or re-arms) a site. Thread-safe.
  void Arm(const std::string& site, Spec spec, std::uint64_t seed = 1);

  void Disarm(const std::string& site);
  void DisarmAll();

  /// True iff any site is armed — the only cost on the disarmed hot path.
  bool armed() const {
    return armed_sites_.load(std::memory_order_relaxed) != 0;
  }

  /// Reports a hit at `site`. May throw InjectedFault (kThrow) or sleep
  /// (kLatency). No-op while disarmed or when the site/key doesn't match.
  void OnSite(const char* site, std::uint64_t key = kAnyKey) {
    if (!armed()) return;
    OnSiteSlow(site, key);
  }

  /// True when an armed kSaturate spec fires for this hit: the caller
  /// should behave as if its queue were full. No-op (false) otherwise.
  bool SaturateAt(const char* site, std::uint64_t key = kAnyKey);

  /// How many times `site` actually injected (threw / slept / saturated).
  std::uint64_t injections(const std::string& site) const;

  /// Process-wide injector the runtime's sites report to.
  static FaultInjector& Global();

 private:
  struct SiteState {
    Spec spec;
    Rng rng{1};
    std::uint64_t matched = 0;   ///< key-matching hits seen
    std::uint64_t injected = 0;  ///< hits that actually fired
  };

  void OnSiteSlow(const char* site, std::uint64_t key);
  /// Decides whether this hit fires; updates counters. Caller holds mu_.
  bool ShouldFire(SiteState& state, std::uint64_t key);

  mutable std::mutex mu_;
  std::map<std::string, SiteState> sites_;           ///< guarded by mu_
  std::atomic<std::uint64_t> armed_sites_{0};
};

}  // namespace nec::runtime
