#include "runtime/thread_pool.h"

#include <utility>

#include "common/check.h"

namespace nec::runtime {

ThreadPool::ThreadPool(Options options)
    : queue_(options.queue_capacity, options.policy) {
  NEC_CHECK_MSG(options.workers >= 1, "ThreadPool needs >= 1 worker");
  threads_.reserve(options.workers);
  for (std::size_t i = 0; i < options.workers; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

bool ThreadPool::Submit(std::function<void()> task) {
  NEC_CHECK(task != nullptr);
  return queue_.Push(std::move(task));
}

void ThreadPool::Shutdown() {
  queue_.Close();
  for (auto& t : threads_) {
    if (t.joinable()) t.join();
  }
}

void ThreadPool::WorkerLoop() {
  // Pop keeps yielding admitted tasks after Close until the queue is dry,
  // so shutdown never strands in-flight work.
  while (auto task = queue_.Pop()) {
    (*task)();
    executed_.fetch_add(1, std::memory_order_relaxed);
  }
}

}  // namespace nec::runtime
