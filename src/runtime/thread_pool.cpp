#include "runtime/thread_pool.h"

#include <utility>

#include "common/check.h"
#include "obs/trace.h"

namespace nec::runtime {

ThreadPool::ThreadPool(Options options)
    : queue_(options.queue_capacity, options.policy) {
  NEC_CHECK_MSG(options.workers >= 1, "ThreadPool needs >= 1 worker");
  threads_.reserve(options.workers);
  for (std::size_t i = 0; i < options.workers; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

bool ThreadPool::Submit(std::function<void()> task,
                        std::function<void()> on_drop) {
  NEC_CHECK(task != nullptr);
  std::optional<Task> evicted;
  const bool admitted =
      queue_.Push(Task{std::move(task), std::move(on_drop)}, &evicted);
  // The victim's unwind hook runs on this (producer) thread, outside the
  // queue lock; the victim can no longer be popped by a worker.
  if (evicted.has_value() && evicted->on_drop) evicted->on_drop();
  return admitted;
}

void ThreadPool::Shutdown() {
  queue_.Close();
  for (auto& t : threads_) {
    if (t.joinable()) t.join();
  }
}

void ThreadPool::WorkerLoop() {
  obs::TraceRecorder::SetThreadName("pool-worker");
  // Pop keeps yielding admitted tasks after Close until the queue is dry,
  // so shutdown never strands in-flight work.
  while (auto task = queue_.Pop()) {
    try {
      task->run();
    } catch (...) {
      // Last-resort containment: an escaping exception would unwind the
      // jthread and std::terminate the whole service. Count it and keep
      // the worker alive for every other session (see header).
      task_exceptions_.fetch_add(1, std::memory_order_relaxed);
    }
    executed_.fetch_add(1, std::memory_order_relaxed);
  }
}

}  // namespace nec::runtime
