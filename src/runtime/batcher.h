// Continuous-batching scheduler for the shared-selector inference hot path.
//
// N concurrent sessions each produce ready 1 s chunks; dispatching each
// chunk as its own Selector::Infer pays N full conv-stack launches over one
// shared weight set. The ContinuousBatcher admits ready chunks into the
// *next* batched forward as soon as a dispatch slot frees — there is no
// coalescing hold window at all. A lone ready chunk dispatches immediately
// as a batch of one; when the dispatcher is busy, chunks accumulate and the
// next forward takes up to `max_batch` of them. Amortization therefore
// emerges from load instead of from holding the oldest chunk hostage (the
// PR 4 MicroBatcher's fixed max-wait window inverted into a 0.94x slowdown
// with multi-second queue waits at 8 sessions — see DESIGN.md §5e).
//
// Scheduling: every key (session) owns a *lane* — a FIFO of its ready
// chunks. Admission is earliest-deadline-first across lane heads: each
// gather repeatedly takes the globally most-urgent head (deadline =
// enqueue + deadline_ms) until the batch is full or no lane is eligible.
// Within a lane, chunks only ever leave in FIFO order, so per-session
// stream order — and with it the modulation-reference latch — is exactly
// the sequential path's.
//
// Work stealing: `workers` dispatch threads run the callback concurrently.
// A lane is claimed exclusively while any of its chunks are in a running
// batch (`in_flight`), which keeps one session's chunks on one thread at a
// time; every *other* lane is up for grabs, so an idle dispatcher steals
// the next ready lanes — a hot session's backlog drains through whichever
// thread frees first instead of serializing behind a single coalescer.
// When several dispatchers are idle, a gather takes only its fair share of
// the ready items (ceil(ready / idle)) so the remainder dispatches in
// parallel rather than queueing behind one full batch.
//
// Determinism: admission order changes WHEN a chunk is processed, never
// WHAT it emits — the batched forward is bit-identical per item to the
// per-chunk path (see Selector::InferBatch), and per-lane FIFO + exclusive
// claim mean each session's stream completes in submission order.
//
// Threading: Enqueue and Purge may be called from any number of pool
// workers. Purge(key) removes every PENDING chunk of a key (drop-oldest
// eviction / session fault: an evicted session's queued chunks must never
// land in a later batch); chunks already in a running batch complete
// normally. Enqueue after Shutdown is a typed invariant violation
// (CheckError → ErrorCategory::kInvariant), not silent UB.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "audio/waveform.h"

namespace nec::runtime {

class ContinuousBatcher {
 public:
  struct Options {
    std::size_t max_batch = 4;   ///< cap on chunks per batched forward
    std::size_t workers = 1;     ///< concurrent dispatch threads
    double deadline_ms = 300.0;  ///< per-chunk end-to-end budget (EDF key)
  };

  struct Item {
    void* key = nullptr;  ///< session identity (opaque to the batcher)
    audio::Waveform chunk;
    std::chrono::steady_clock::time_point enqueued;
    /// EDF admission key: enqueued + deadline_ms. Earliest wins.
    std::chrono::steady_clock::time_point deadline;
    /// Trace flow id linking this chunk's enqueue to its completion in
    /// the batch that served it (0 when tracing is disabled).
    std::uint64_t flow_id = 0;
  };

  /// Processes one gathered batch (EDF order across lanes, FIFO within a
  /// lane). Runs on a dispatch thread; up to Options::workers callbacks
  /// run concurrently, never two for the same key.
  using BatchFn = std::function<void(std::vector<Item>&&)>;

  ContinuousBatcher(Options options, BatchFn fn);
  ~ContinuousBatcher();

  ContinuousBatcher(const ContinuousBatcher&) = delete;
  ContinuousBatcher& operator=(const ContinuousBatcher&) = delete;

  /// Adds a ready chunk (deadline = now + deadline_ms). Thread-safe.
  /// Calling after Shutdown throws a typed CheckError (kInvariant).
  ///
  /// `wire_flow` (optional) is a trace flow id minted by a REMOTE peer
  /// and carried over the wire (kTraceContext, DESIGN.md §5g): when
  /// nonzero it becomes the item's flow id verbatim — no local mint, no
  /// local flow-begin event, since the arrow's tail lives in the
  /// sender's trace — so the chunk's completion closes a cross-process
  /// flow.
  void Enqueue(void* key, audio::Waveform chunk,
               std::uint64_t wire_flow = 0);

  /// Test seam: Enqueue with an explicit deadline, so EDF ordering is
  /// deterministic under test without racing the clock.
  void EnqueueWithDeadline(void* key, audio::Waveform chunk,
                           std::chrono::steady_clock::time_point deadline,
                           std::uint64_t wire_flow = 0);

  /// Removes every pending (not yet dispatched) chunk of `key`; returns
  /// how many were removed. In-flight chunks are unaffected. Thread-safe.
  ///
  /// Used for both drop-oldest eviction AND session faulting: when a
  /// session faults while its chunks sit in its lane, the purge guarantees
  /// no dispatcher stalls on the dead session's chunks and none of them
  /// poisons a later batch — surviving lanes' FIFO order is untouched
  /// (tested in test_runtime_faults).
  std::size_t Purge(void* key);

  /// Pending (not yet dispatched) chunks of `key`. Thread-safe; a
  /// diagnostic snapshot — the count can change before the caller acts.
  std::size_t pending_for(void* key) const;

  /// True when `key` has no pending chunks AND none in a running batch
  /// (an absent lane is idle). Thread-safe; with no concurrent Enqueue
  /// for the key, idleness is stable once observed — the quiescence
  /// probe for session migration.
  bool idle_for(void* key) const;

  /// Blocks until every lane is empty and no batch is in flight. Callers
  /// must guarantee no concurrent Enqueue (same contract as
  /// SessionManager::Drain).
  void Drain();

  /// Dispatches remaining pending chunks, then joins the dispatch
  /// threads. Idempotent.
  void Shutdown();

  std::size_t pending() const;

 private:
  struct Lane {
    std::deque<Item> fifo;
    /// True while a dispatch thread owns chunks of this lane inside a
    /// running batch. An in-flight lane is ineligible for gathering, which
    /// serializes each session's chunks across concurrent dispatchers.
    bool in_flight = false;
  };

  void WorkerLoop(std::size_t worker_index);
  /// EDF gather under mu_: fills `batch` (≤ the fair-share cap) from
  /// eligible lane heads, marks the contributing lanes in flight and
  /// records them in `claimed`. Returns false when nothing is eligible.
  bool GatherLocked(std::vector<Item>& batch, std::vector<Lane*>& claimed);
  /// True iff some lane has a pending chunk and is not in flight.
  bool HasEligibleLocked() const;

  const Options options_;
  const BatchFn fn_;

  mutable std::mutex mu_;
  std::condition_variable cv_;  ///< wakes idle dispatch threads
  std::condition_variable drained_cv_;
  std::unordered_map<void*, Lane> lanes_;  ///< guarded by mu_
  std::size_t pending_count_ = 0;   ///< chunks across all lanes; guarded by mu_
  std::size_t active_batches_ = 0;  ///< callbacks running; guarded by mu_
  std::size_t idle_workers_ = 0;    ///< dispatchers waiting; guarded by mu_
  bool shutdown_ = false;           ///< guarded by mu_

  std::vector<std::thread> threads_;  ///< last member: started in the ctor
};

}  // namespace nec::runtime
