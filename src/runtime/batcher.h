// Micro-batching coalescer for the shared-selector inference hot path.
//
// N concurrent sessions each produce ready 1 s chunks; dispatching each
// chunk as its own Selector::Infer pays N full conv-stack launches over one
// shared weight set. The MicroBatcher gathers ready chunks from all
// sessions into one batch — up to `max_batch` items, waiting at most an
// effective window derived from `max_wait_us` and the 300 ms chunk budget —
// and hands the batch to a single callback (SessionManager::RunBatch, which
// runs one GenerateShadowBatch and completes each chunk in FIFO order).
//
// Determinism: the batcher never reorders items. Chunks are dispatched in
// enqueue order, and the batched forward is bit-identical per item to the
// per-chunk path (see Selector::InferBatch), so coalescing changes WHEN a
// chunk is processed, never WHAT it emits.
//
// Deadline math (DESIGN.md §5e): a chunk enqueued at t must finish by
// t + deadline; the batch it joins takes ~B ms of compute (EWMA-tracked),
// so the coalescer may hold the oldest chunk at most
//     min(max_wait_us, max(0, deadline_ms - ewma_batch_ms))
// before dispatching whatever has gathered. A full batch dispatches
// immediately.
//
// Threading: one dedicated coalescer thread runs the callback; Enqueue and
// Purge may be called from any number of pool workers. Purge(key) removes
// every PENDING item of a key (drop-oldest eviction: an evicted session's
// queued chunks must never land in a later batch); items already handed to
// the callback are completed normally.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "audio/waveform.h"

namespace nec::runtime {

class MicroBatcher {
 public:
  struct Options {
    std::size_t max_batch = 4;       ///< dispatch as soon as this many wait
    std::uint64_t max_wait_us = 5000;  ///< hard cap on coalescing hold
    double deadline_ms = 300.0;      ///< per-chunk end-to-end budget
  };

  struct Item {
    void* key = nullptr;  ///< session identity (opaque to the batcher)
    audio::Waveform chunk;
    std::chrono::steady_clock::time_point enqueued;
    /// Trace flow id linking this chunk's enqueue to its completion in
    /// the batch that served it (0 when tracing is disabled).
    std::uint64_t flow_id = 0;
  };

  /// Processes one gathered batch, in the given (enqueue) order. Runs on
  /// the coalescer thread.
  using BatchFn = std::function<void(std::vector<Item>&&)>;

  MicroBatcher(Options options, BatchFn fn);
  ~MicroBatcher();

  MicroBatcher(const MicroBatcher&) = delete;
  MicroBatcher& operator=(const MicroBatcher&) = delete;

  /// Adds a ready chunk. Thread-safe. Must not be called after Shutdown.
  void Enqueue(void* key, audio::Waveform chunk);

  /// Removes every pending (not yet dispatched) item of `key`; returns how
  /// many were removed. In-flight items are unaffected. Thread-safe.
  ///
  /// Used for both drop-oldest eviction AND session faulting: when a
  /// session faults while its chunks sit in a partially-gathered batch,
  /// the purge guarantees the coalescer neither stalls on the dead
  /// session's items nor lets them poison a later batch — surviving
  /// sessions' FIFO order is untouched (tested in test_runtime_faults).
  std::size_t Purge(void* key);

  /// Pending (not yet dispatched) items of `key`. Thread-safe; a
  /// diagnostic snapshot — the count can change before the caller acts.
  std::size_t pending_for(void* key) const;

  /// Blocks until the queue is empty and no batch is in flight. Callers
  /// must guarantee no concurrent Enqueue (same contract as
  /// SessionManager::Drain).
  void Drain();

  /// Dispatches remaining pending items, then joins the coalescer thread.
  /// Idempotent.
  void Shutdown();

  std::size_t pending() const;

 private:
  void Loop();
  /// Current hold window for the oldest pending chunk (see header).
  std::chrono::microseconds EffectiveWaitUs() const;

  const Options options_;
  const BatchFn fn_;

  mutable std::mutex mu_;
  std::condition_variable cv_;        ///< wakes the coalescer thread
  std::condition_variable drained_cv_;
  std::deque<Item> pending_;  ///< guarded by mu_
  bool busy_ = false;         ///< a batch is in the callback; guarded by mu_
  bool shutdown_ = false;     ///< guarded by mu_
  double ewma_batch_ms_ = 0.0;  ///< guarded by mu_

  std::thread thread_;  ///< last member: started in the ctor
};

}  // namespace nec::runtime
