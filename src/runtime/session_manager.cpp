#include "runtime/session_manager.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "common/check.h"

namespace nec::runtime {
namespace {

double MsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

SessionManager::SessionManager(
    std::shared_ptr<const core::Selector> selector,
    std::shared_ptr<const encoder::SpeakerEncoder> encoder,
    core::PipelineOptions pipeline_options, Options options)
    : options_(options),
      pipeline_options_(pipeline_options),
      selector_(std::move(selector)),
      encoder_(std::move(encoder)),
      pool_(ThreadPool::Options{.workers = options.workers,
                                .queue_capacity = options.queue_capacity,
                                .policy = options.policy}) {
  NEC_CHECK(selector_ != nullptr && encoder_ != nullptr);
  chunk_samples_ = static_cast<std::size_t>(
      options_.chunk_s * selector_->config().sample_rate);
  if (options_.max_batch > 1 &&
      options_.kind == core::SelectorKind::kNeural) {
    batcher_ = std::make_unique<MicroBatcher>(
        MicroBatcher::Options{.max_batch = options_.max_batch,
                              .max_wait_us = options_.max_wait_us,
                              .deadline_ms = options_.deadline_ms},
        [this](std::vector<MicroBatcher::Item>&& items) {
          RunBatch(std::move(items));
        });
  }
}

SessionManager::~SessionManager() { Shutdown(); }

void SessionManager::Shutdown() {
  // Pool first (no strand can Enqueue afterwards), then the coalescer —
  // its Shutdown dispatches whatever is still pending before joining.
  pool_.Shutdown();
  if (batcher_ != nullptr) batcher_->Shutdown();
}

SessionManager::SessionId SessionManager::CreateSession(
    std::span<const audio::Waveform> references) {
  auto session = std::make_unique<Session>(
      selector_, encoder_, pipeline_options_, options_.chunk_s,
      options_.kind);
  session->pipeline.Enroll(references);
  stats_.AddSession();
  std::lock_guard lock(sessions_mu_);
  sessions_.push_back(std::move(session));
  return sessions_.size() - 1;
}

SessionManager::Session* SessionManager::GetSession(SessionId id) const {
  std::lock_guard lock(sessions_mu_);
  NEC_CHECK_MSG(id < sessions_.size(), "unknown session id " << id);
  return sessions_[id].get();
}

bool SessionManager::Submit(SessionId id, std::span<const float> samples) {
  Session* s = GetSession(id);
  stats_.AddSamples(samples.size());

  bool dispatch = false;
  {
    std::lock_guard lock(s->mu);
    s->inbox.insert(s->inbox.end(), samples.begin(), samples.end());
    if (!s->running && !s->inbox.empty()) {
      s->running = true;
      dispatch = true;
    }
  }
  if (!dispatch) return true;  // an active strand will pick the samples up

  BeginStrand();
  stats_.AddDispatch();
  if (!pool_.Submit([this, s] { RunStrand(s); },
                    /*on_drop=*/[this, s] { AbandonStrand(s); })) {
    // Pool bounced the strand (kReject backpressure, or shutdown). The
    // samples stay in the inbox; a later Submit redispatches.
    stats_.AddDispatchRejection();
    {
      std::lock_guard lock(s->mu);
      s->running = false;
    }
    FinishStrand();
    return false;
  }
  return true;
}

void SessionManager::RunStrand(Session* s) {
  if (batcher_ != nullptr) {
    RunStrandBatched(s);
    return;
  }
  // Drain the inbox at most one chunk per StreamingProcessor::Push, so the
  // recorded wall-clock of an emitting Push is the latency of exactly one
  // chunk (selector + broadcast), matching Table II accounting.
  std::vector<float> take;
  for (;;) {
    {
      std::lock_guard lock(s->mu);
      if (s->inbox.empty()) {
        s->running = false;
        break;
      }
      const std::size_t n =
          std::min(s->inbox.size(), chunk_samples_);
      take.assign(s->inbox.begin(),
                  s->inbox.begin() + static_cast<std::ptrdiff_t>(n));
      s->inbox.erase(s->inbox.begin(),
                     s->inbox.begin() + static_cast<std::ptrdiff_t>(n));
    }

    const auto t0 = std::chrono::steady_clock::now();
    std::optional<audio::Waveform> out = s->proc.Push(take);
    if (out.has_value()) {
      stats_.AddChunk(MsSince(t0));
      std::lock_guard lock(s->mu);
      s->output.Append(*out);
    }
  }
  FinishStrand();
}

void SessionManager::RunStrandBatched(Session* s) {
  // Batched strand: never runs the selector. Buffers the inbox into the
  // processor, pops every ready chunk, and hands each to the coalescer in
  // stream order. Completion (shadow + modulation + output append) happens
  // on the coalescer thread in RunBatch.
  std::vector<float> take;
  for (;;) {
    {
      std::lock_guard lock(s->mu);
      if (s->inbox.empty()) {
        s->running = false;
        break;
      }
      take.assign(s->inbox.begin(), s->inbox.end());
      s->inbox.clear();
    }
    s->proc.BufferSamples(take);
    while (s->proc.HasFullChunk()) {
      batcher_->Enqueue(s, s->proc.PopChunk());
    }
  }
  FinishStrand();
}

void SessionManager::RunBatch(std::vector<MicroBatcher::Item>&& items) {
  const auto t0 = std::chrono::steady_clock::now();
  stats_.AddBatch(items.size());
  for (const MicroBatcher::Item& it : items) {
    stats_.AddQueueWait(
        std::chrono::duration<double, std::milli>(t0 - it.enqueued)
            .count());
  }

  std::vector<core::ShadowBatchRequest> requests(items.size());
  for (std::size_t i = 0; i < items.size(); ++i) {
    Session* s = static_cast<Session*>(items[i].key);
    requests[i] = core::ShadowBatchRequest{
        .pipeline = &s->pipeline,
        .mixed = &items[i].chunk,
        .ws = &s->proc.stft_workspace()};
  }
  std::vector<audio::Waveform> shadows =
      core::GenerateShadowBatch(requests);
  // Attribute the batched shadow-generation wall time evenly across the
  // chunks it served, mirroring the per-chunk selector_ms accounting.
  const double selector_ms_each = MsSince(t0) / items.size();

  // Complete in enqueue (FIFO) order: per-session chunk order — and with
  // it the stream-wide modulation-reference latch — is part of the bits.
  for (std::size_t i = 0; i < items.size(); ++i) {
    Session* s = static_cast<Session*>(items[i].key);
    audio::Waveform modulated =
        s->proc.CompleteShadowChunk(std::move(shadows[i]),
                                    selector_ms_each);
    // Chunk latency keeps its PR 2 meaning — processing time, not queue
    // wait: batch dispatch start → this chunk's completion.
    stats_.AddChunk(MsSince(t0));
    std::lock_guard lock(s->mu);
    s->output.Append(modulated);
  }
}

void SessionManager::AbandonStrand(Session* s) {
  // kDropOldest evicted this session's queued strand before it ran. The
  // buffered audio has missed its overshadowing deadline, so discard it
  // and return the session to idle — otherwise `running` stays true
  // forever (no strand will ever clear it), later Submits never
  // redispatch, Flush fails its idle check, and Drain deadlocks on the
  // leaked in_flight_ count. Runs on the thread whose Submit caused the
  // eviction; the evicted task itself can no longer run.
  std::size_t discarded = 0;
  {
    std::lock_guard lock(s->mu);
    discarded = s->inbox.size();
    s->inbox.clear();
    s->running = false;
  }
  if (batcher_ != nullptr) {
    // The session's already-popped chunks waiting in the coalescer are
    // part of the evicted backlog: purge them so none lands in a later
    // batch (in-flight batch items complete normally).
    discarded += batcher_->Purge(s) * chunk_samples_;
  }
  stats_.AddSamplesDropped(discarded);
  FinishStrand();
}

void SessionManager::BeginStrand() {
  std::lock_guard lock(drain_mu_);
  ++in_flight_;
}

void SessionManager::FinishStrand() {
  std::size_t left;
  {
    std::lock_guard lock(drain_mu_);
    left = --in_flight_;
  }
  if (left == 0) drain_cv_.notify_all();
}

void SessionManager::Drain() {
  {
    std::unique_lock lock(drain_mu_);
    drain_cv_.wait(lock, [&] { return in_flight_ == 0; });
  }
  // Once no strand is in flight (and the caller guarantees no concurrent
  // Submit), nothing can Enqueue — wait out the coalescer's backlog too.
  if (batcher_ != nullptr) batcher_->Drain();
}

std::optional<audio::Waveform> SessionManager::Flush(SessionId id) {
  Session* s = GetSession(id);
  {
    std::lock_guard lock(s->mu);
    NEC_CHECK_MSG(!s->running && s->inbox.empty(),
                  "Flush requires an idle session — call Drain() first");
  }
  const auto t0 = std::chrono::steady_clock::now();
  std::optional<audio::Waveform> out = s->proc.Flush();
  if (out.has_value()) stats_.AddChunk(MsSince(t0));
  return out;
}

audio::Waveform SessionManager::TakeOutput(SessionId id) {
  Session* s = GetSession(id);
  std::lock_guard lock(s->mu);
  return std::exchange(s->output, audio::Waveform());
}

core::ModuleTimings SessionManager::SessionTimings(SessionId id) const {
  return GetSession(id)->proc.timings();
}

RuntimeStatsSnapshot SessionManager::Stats() const {
  return stats_.Snapshot(pool_.queue_depth(), pool_.dropped());
}

std::size_t SessionManager::num_sessions() const {
  std::lock_guard lock(sessions_mu_);
  return sessions_.size();
}

}  // namespace nec::runtime
