#include "runtime/session_manager.h"

#include <algorithm>
#include <chrono>
#include <exception>
#include <string>
#include <thread>
#include <utility>

#include "common/check.h"
#include "obs/trace.h"

namespace nec::runtime {
namespace {

double MsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

// Maps the exception currently being handled onto the closed error
// taxonomy. Must be called from inside a catch block.
SessionError ClassifyCurrentException() {
  try {
    throw;
  } catch (const InjectedFault& f) {
    return SessionError{f.category(), f.what()};
  } catch (const std::invalid_argument& e) {
    return SessionError{ErrorCategory::kBadInput, e.what()};
  } catch (const nec::CheckError& e) {
    return SessionError{ErrorCategory::kInvariant, e.what()};
  } catch (const std::exception& e) {
    return SessionError{ErrorCategory::kInvariant, e.what()};
  } catch (...) {
    return SessionError{ErrorCategory::kInvariant, "unknown exception"};
  }
}

}  // namespace

SessionManager::SessionManager(
    std::shared_ptr<const core::Selector> selector,
    std::shared_ptr<const encoder::SpeakerEncoder> encoder,
    core::PipelineOptions pipeline_options, Options options)
    : options_(options),
      pipeline_options_(pipeline_options),
      selector_(std::move(selector)),
      encoder_(std::move(encoder)),
      pool_(ThreadPool::Options{.workers = options.workers,
                                .queue_capacity = options.queue_capacity,
                                .policy = options.policy}) {
  NEC_CHECK(selector_ != nullptr && encoder_ != nullptr);
  chunk_samples_ = static_cast<std::size_t>(
      options_.chunk_s * selector_->config().sample_rate);
  if (options_.max_batch > 1 &&
      options_.kind == core::SelectorKind::kNeural) {
    batcher_ = std::make_unique<ContinuousBatcher>(
        ContinuousBatcher::Options{.max_batch = options_.max_batch,
                                   .workers = options_.workers,
                                   .deadline_ms = options_.deadline_ms},
        [this](std::vector<ContinuousBatcher::Item>&& items) {
          RunBatch(std::move(items));
        });
  }
}

SessionManager::~SessionManager() { Shutdown(); }

void SessionManager::Shutdown() {
  // Pool first (no strand can Enqueue afterwards), then the batcher —
  // its Shutdown dispatches whatever is still pending before joining.
  pool_.Shutdown();
  if (batcher_ != nullptr) batcher_->Shutdown();
}

SessionManager::SessionId SessionManager::CreateSession(
    std::span<const audio::Waveform> references) {
  Session* session = nullptr;
  {
    std::lock_guard lock(sessions_mu_);
    const SessionId id = sessions_.size();
    sessions_.push_back(std::make_unique<Session>(
        selector_, encoder_, pipeline_options_, options_.chunk_s,
        options_.kind, id));
    session = sessions_.back().get();
  }
  // Enrollment (the encoder forward) runs outside sessions_mu_ so
  // concurrent CreateSession calls embed in parallel; only the creator
  // knows the id until this returns.
  session->pipeline.Enroll(references);
  stats_.AddSession();
  return session->id;
}

SessionManager::Session* SessionManager::GetSession(SessionId id) const {
  std::lock_guard lock(sessions_mu_);
  NEC_CHECK_MSG(id < sessions_.size(), "unknown session id " << id);
  return sessions_[id].get();
}

SubmitResult SessionManager::Submit(SessionId id,
                                    std::span<const float> samples,
                                    std::uint64_t trace_flow) {
  NEC_TRACE_SPAN_ARG("runtime.submit", id);
  Session* s = GetSession(id);

  // Input hygiene at the service boundary: NaN/Inf/wild-amplitude capture
  // audio never reaches the DSP. The scan is one pass over the samples —
  // noise next to the selector forward.
  std::vector<float> repaired;
  std::span<const float> accepted = samples;
  if (options_.fault.bad_input != BadInputPolicy::kTrust &&
      !samples.empty()) {
    const SampleScan scan = ScanSamples(samples);
    if (!scan.clean()) {
      if (options_.fault.bad_input == BadInputPolicy::kReject) {
        stats_.AddBadInputRejection();
        return SubmitResult{SessionError{
            ErrorCategory::kBadInput,
            "rejected submit: " + std::to_string(scan.nonfinite) +
                " non-finite + " + std::to_string(scan.wild) +
                " wild-amplitude samples"}};
      }
      repaired.assign(samples.begin(), samples.end());
      stats_.AddSanitized(SanitizeSamples(repaired).total());
      accepted = repaired;
    }
  }

  stats_.AddSamples(accepted.size());

  bool dispatch = false;
  {
    std::lock_guard lock(s->mu);
    if (s->error.has_value()) {
      // A faulted session sheds input until ResetSession().
      stats_.AddSamplesDropped(accepted.size());
      return SubmitResult{*s->error};
    }
    if (s->inbox.empty() && !accepted.empty()) {
      // Arrival time of the oldest unconsumed samples — the anchor for
      // end-to-end latency on the unbatched path.
      s->inbox_since = std::chrono::steady_clock::now();
    }
    s->inbox.insert(s->inbox.end(), accepted.begin(), accepted.end());
    if (trace_flow != 0) s->wire_flow = trace_flow;
    if (!s->running && !s->inbox.empty()) {
      s->running = true;
      dispatch = true;
    }
  }
  if (!dispatch) return {};  // an active strand will pick the samples up

  BeginStrand();
  stats_.AddDispatch();
  const bool saturated =
      FaultInjector::Global().SaturateAt("pool.submit", s->id);
  if (saturated ||
      !pool_.Submit([this, s] { RunStrand(s); },
                    /*on_drop=*/[this, s] { AbandonStrand(s); })) {
    // Pool bounced the strand (kReject backpressure, shutdown, or an
    // injected saturation). The samples stay in the inbox; a later Submit
    // — an empty one will do — redispatches.
    stats_.AddDispatchRejection();
    {
      std::lock_guard lock(s->mu);
      s->running = false;
    }
    FinishStrand();
    return SubmitResult{SessionError{
        ErrorCategory::kOverload,
        "strand dispatch bounced by queue backpressure; samples are "
        "buffered — retry with an empty Submit"}};
  }
  return {};
}

void SessionManager::RunStrand(Session* s) {
  if (batcher_ != nullptr) {
    RunStrandBatched(s);
    return;
  }
  NEC_TRACE_SPAN_ARG("runtime.strand", s->id);
  std::vector<float> take;
  for (;;) {
    std::chrono::steady_clock::time_point ready;
    std::uint64_t flow = 0;
    {
      std::lock_guard lock(s->mu);
      if (s->inbox.empty() || s->error.has_value()) {
        s->running = false;
        break;
      }
      take.assign(s->inbox.begin(), s->inbox.end());
      s->inbox.clear();
      flow = std::exchange(s->wire_flow, 0);
      // Chunks completed from this take were waiting since the oldest
      // taken sample arrived. When several chunks pop from one take the
      // later ones inherit the oldest arrival — end-to-end latency may
      // overcount there, never undercount (honest in the direction that
      // matters for the deadline check).
      ready = s->inbox_since;
    }
    s->proc.BufferSamples(take);
    bool faulted = false;
    while (s->proc.HasFullChunk()) {
      s->proc.PopChunkInto(s->chunk_buf);
      // The wire-carried flow names ONE chunk; the first popped from this
      // take claims it.
      if (!ProcessOneChunk(s, s->chunk_buf, ready,
                           std::exchange(flow, 0))) {
        faulted = true;  // FaultSession already shed inbox + running
        break;
      }
    }
    if (faulted) break;
  }
  FinishStrand();
}

void SessionManager::RunStrandBatched(Session* s) {
  // Batched strand: never runs the selector. Buffers the inbox into the
  // processor, pops every ready chunk, and hands each to the batcher in
  // stream order — degraded chunks included, so ALL completion happens on
  // the dispatcher that claimed the session's lane and per-session FIFO
  // order survives ladder transitions. Completion (shadow + modulation +
  // output append) happens in RunBatch.
  NEC_TRACE_SPAN_ARG("runtime.strand_batched", s->id);
  std::vector<float> take;
  for (;;) {
    std::uint64_t flow = 0;
    {
      std::lock_guard lock(s->mu);
      if (s->inbox.empty() || s->error.has_value()) {
        s->running = false;
        break;
      }
      take.assign(s->inbox.begin(), s->inbox.end());
      s->inbox.clear();
      flow = std::exchange(s->wire_flow, 0);
    }
    try {
      s->proc.BufferSamples(take);
      while (s->proc.HasFullChunk()) {
        FaultInjector::Global().OnSite("strand.chunk", s->id);
        // First chunk of the take carries the wire flow (if any); the
        // batcher adopts it instead of minting a local id.
        batcher_->Enqueue(s, s->proc.PopChunk(), std::exchange(flow, 0));
      }
    } catch (...) {
      FaultSession(s, ClassifyCurrentException());
      break;
    }
  }
  FinishStrand();
}

void SessionManager::GenerateShadowAtLevelInto(Session* s,
                                               const audio::Waveform& chunk,
                                               DegradeLevel level,
                                               audio::Waveform& out) {
  switch (level) {
    case DegradeLevel::kNeural:
      s->pipeline.GenerateShadowInto(chunk, core::SelectorKind::kNeural,
                                     s->proc.shadow_scratch(), out);
      return;
    case DegradeLevel::kLasFallback:
      s->pipeline.GenerateShadowInto(chunk, core::SelectorKind::kLasMask,
                                     s->proc.shadow_scratch(), out);
      return;
    case DegradeLevel::kSilence:
      // Passthrough rung: an all-zero shadow modulates to silence — no
      // cancellation, but the stream keeps its cadence and the ladder can
      // probe back up.
      out.AssignSilence(chunk.sample_rate(), chunk.size());
      return;
  }
  NEC_CHECK_MSG(false, "unreachable degrade level");
}

bool SessionManager::ProcessOneChunk(
    Session* s, const audio::Waveform& chunk,
    std::chrono::steady_clock::time_point ready, std::uint64_t flow) {
  bool probe = false;
  DegradeLevel level = DegradeLevel::kNeural;
  {
    std::lock_guard lock(s->mu);
    level = EffectiveLevelLocked(s, &probe);
  }
  // Hop decomposition (§5g): ready → compute start is the shard's queue
  // share of the end-to-end number.
  HopStats::Global().Record(Hop::kShardQueue, MsSince(ready));
  const FaultOptions& fo = options_.fault;
  std::size_t attempts = 0;
  for (;;) {
    try {
      const auto t0 = std::chrono::steady_clock::now();
      obs::TraceRecorder& rec = obs::TraceRecorder::Global();
      const std::uint64_t t0_ns = rec.enabled() ? obs::TraceNowNs() : 0;
      FaultInjector::Global().OnSite("strand.chunk", s->id);
      GenerateShadowAtLevelInto(s, chunk, level, s->shadow_buf);
      const double selector_ms = MsSince(t0);
      s->proc.CompleteShadowChunkInto(s->shadow_buf, selector_ms,
                                      s->mod_buf);
      const double total_ms = MsSince(t0);
      stats_.AddChunk(total_ms);
      stats_.AddChunkE2E(MsSince(ready));
      HopStats::Global().Record(Hop::kShardCompute, total_ms);
      if (t0_ns != 0) {
        rec.RecordSpan("shard.compute", "nec", t0_ns,
                       obs::TraceNowNs() - t0_ns, flow, s->id);
        if (flow != 0) {
          rec.RecordFlow(obs::TraceEventKind::kFlowEnd, "chunk.flow", flow);
        }
      }
      std::lock_guard lock(s->mu);
      if (s->output.size() == 0) {
        s->output_since = std::chrono::steady_clock::now();
      }
      s->output.Append(s->mod_buf);
      ++s->chunk_count;
      UpdateWatchdogLocked(s, level, probe, total_ms);
      return true;
    } catch (...) {
      SessionError err = ClassifyCurrentException();
      if (probe) {
        // The rung above is still broken: fall back to the current rung
        // and regenerate there. Retries/degradation judge the current
        // rung, not the failed probe.
        probe = false;
        std::lock_guard lock(s->mu);
        s->successes_at_level = 0;
        level = s->level;
        continue;
      }
      if (attempts < fo.max_retries) {
        // Regeneration is safe: CompleteShadowChunk (the only stream-state
        // mutation) runs strictly after a successful generate.
        ++attempts;
        stats_.AddRetry();
        if (fo.retry_backoff_ms > 0.0) {
          std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
              fo.retry_backoff_ms * static_cast<double>(attempts)));
        }
        continue;
      }
      if (fo.on_error == FaultPolicy::kDegrade) {
        bool stepped = false;
        {
          std::lock_guard lock(s->mu);
          if (s->level < DegradeLevel::kSilence) {
            StepDownLocked(s);
            stepped = true;
          }
          level = s->level;
        }
        if (stepped) {
          attempts = 0;
          continue;
        }
      }
      FaultSession(s, std::move(err));
      return false;
    }
  }
}

void SessionManager::RunBatch(std::vector<ContinuousBatcher::Item>&& items) {
  NEC_TRACE_SPAN_ARG("runtime.batch", items.size());
  const auto t0 = std::chrono::steady_clock::now();
  const std::uint64_t t0_ns =
      obs::TraceRecorder::Global().enabled() ? obs::TraceNowNs() : 0;
  stats_.AddBatch(items.size());
  for (const ContinuousBatcher::Item& it : items) {
    const double wait_ms =
        std::chrono::duration<double, std::milli>(t0 - it.enqueued)
            .count();
    stats_.AddQueueWait(wait_ms);
    // Hop decomposition (§5g): batcher wait is the batched path's
    // shard-queue share.
    HopStats::Global().Record(Hop::kShardQueue, wait_ms);
  }

  // Disposition pass, in admission order: a faulted session's items are
  // shed (a fault may land between Enqueue and dispatch); only chunks at
  // the kNeural rung join the batched forward — degraded chunks are
  // generated singly in the completion loop below, which runs strictly in
  // admission order (FIFO within each session — the batcher's lane
  // invariant) so per-session chunk order, and with it the modulation
  // latch, is preserved across ladder transitions.
  enum class Route { kShed, kBatched, kSingle };
  std::vector<Route> route(items.size());
  std::vector<std::size_t> neural;
  neural.reserve(items.size());
  for (std::size_t i = 0; i < items.size(); ++i) {
    Session* s = static_cast<Session*>(items[i].key);
    std::lock_guard lock(s->mu);
    if (s->error.has_value()) {
      route[i] = Route::kShed;
    } else if (s->level == DegradeLevel::kNeural) {
      route[i] = Route::kBatched;
      neural.push_back(i);
    } else {
      route[i] = Route::kSingle;
    }
  }

  std::vector<std::optional<audio::Waveform>> shadows(items.size());
  std::vector<std::optional<SessionError>> errors(items.size());
  double selector_ms_each = 0.0;
  if (!neural.empty()) {
    const auto tf = std::chrono::steady_clock::now();
    GenerateShadowsBisect(items, neural, 0, neural.size(), shadows, errors);
    // Attribute the batched shadow-generation wall time evenly across the
    // chunks it served, mirroring the per-chunk selector_ms accounting.
    selector_ms_each = MsSince(tf) / static_cast<double>(neural.size());
  }

  // Complete in admission order: per-session chunk order — and with it
  // the stream-wide modulation-reference latch — is part of the bits.
  for (std::size_t i = 0; i < items.size(); ++i) {
    Session* s = static_cast<Session*>(items[i].key);
    switch (route[i]) {
      case Route::kShed:
        stats_.AddSamplesDropped(items[i].chunk.size());
        break;
      case Route::kBatched:
        if (errors[i].has_value()) {
          // The bisection isolated this item as the poison.
          HandleGenerationError(s, std::move(items[i].chunk),
                                std::move(*errors[i]), items[i].enqueued);
          break;
        }
        try {
          s->proc.CompleteShadowChunkInto(*shadows[i], selector_ms_each,
                                          s->mod_buf);
          // Chunk latency keeps its PR 2 meaning — processing time, not
          // queue wait: batch dispatch start → this chunk's completion.
          // End-to-end latency is the honest one: batcher enqueue → this
          // completion, queue wait included.
          const double total_ms = MsSince(t0);
          stats_.AddChunk(total_ms);
          stats_.AddChunkE2E(MsSince(items[i].enqueued));
          HopStats::Global().Record(Hop::kShardCompute, total_ms);
          if (t0_ns != 0) {
            obs::TraceRecorder::Global().RecordSpan(
                "shard.compute", "nec", t0_ns, obs::TraceNowNs() - t0_ns,
                items[i].flow_id, s->id);
          }
          std::lock_guard lock(s->mu);
          if (s->output.size() == 0) {
            s->output_since = std::chrono::steady_clock::now();
          }
          s->output.Append(s->mod_buf);
          ++s->chunk_count;
          UpdateWatchdogLocked(s, DegradeLevel::kNeural, /*probe=*/false,
                               total_ms);
        } catch (...) {
          FaultSession(s, ClassifyCurrentException());
        }
        break;
      case Route::kSingle:
        // Degraded (or probing) session: generate on the claiming
        // dispatcher so completion order stays FIFO. ProcessOneChunk owns
        // retries, the ladder, the fault transition — and, via the flow
        // id, this chunk's flow-end event (skip the shared one below or
        // the arrow head would be emitted twice).
        ProcessOneChunk(s, items[i].chunk, items[i].enqueued,
                        items[i].flow_id);
        continue;
    }
    // Flow arrow head: ties this chunk's completion (or shedding) back to
    // its Enqueue tail, batch membership visible via the enclosing span.
    obs::TraceRecorder::Global().RecordFlow(obs::TraceEventKind::kFlowEnd,
                                            "chunk.flow", items[i].flow_id);
  }
}

void SessionManager::GenerateShadowsBisect(
    std::vector<ContinuousBatcher::Item>& items,
    const std::vector<std::size_t>& indices, std::size_t begin,
    std::size_t end, std::vector<std::optional<audio::Waveform>>& shadows,
    std::vector<std::optional<SessionError>>& errors) {
  const std::size_t n = end - begin;
  if (n == 0) return;
  try {
    std::vector<core::ShadowBatchRequest> requests(n);
    for (std::size_t j = 0; j < n; ++j) {
      const std::size_t i = indices[begin + j];
      Session* s = static_cast<Session*>(items[i].key);
      // Per-item injection site, hit inside the attempt so the bisection
      // isolates down to the single poisoned item.
      FaultInjector::Global().OnSite("batch.item", s->id);
      requests[j] = core::ShadowBatchRequest{
          .pipeline = &s->pipeline,
          .mixed = &items[i].chunk,
          .ws = &s->proc.stft_workspace()};
    }
    std::vector<audio::Waveform> out = core::GenerateShadowBatch(requests);
    for (std::size_t j = 0; j < n; ++j) {
      shadows[indices[begin + j]] = std::move(out[j]);
    }
  } catch (...) {
    if (n == 1) {
      errors[indices[begin]] = ClassifyCurrentException();
      return;
    }
    // A poisoned batch: split and retry each half. The batched forward is
    // bit-identical per item regardless of batch composition (see
    // GenerateShadowBatch), so survivors' output is unchanged; cost is
    // O(log n) extra forwards for the poisoned item's neighborhood.
    stats_.AddBatchSplit();
    const std::size_t mid = begin + n / 2;
    GenerateShadowsBisect(items, indices, begin, mid, shadows, errors);
    GenerateShadowsBisect(items, indices, mid, end, shadows, errors);
  }
}

void SessionManager::HandleGenerationError(
    Session* s, audio::Waveform chunk, SessionError error,
    std::chrono::steady_clock::time_point ready) {
  if (options_.fault.on_error == FaultPolicy::kDegrade) {
    bool stepped = false;
    {
      std::lock_guard lock(s->mu);
      if (!s->error.has_value() && s->level < DegradeLevel::kSilence) {
        StepDownLocked(s);
        stepped = true;
      }
    }
    if (stepped) {
      // Regenerate this very chunk at the lower rung — the stream loses
      // no samples on a degrade transition.
      ProcessOneChunk(s, chunk, ready);
      return;
    }
  }
  FaultSession(s, std::move(error));
}

void SessionManager::FaultSession(Session* s, SessionError error) {
  const ErrorCategory category = error.category;
  std::size_t shed = 0;
  {
    std::lock_guard lock(s->mu);
    if (!s->error.has_value()) s->error = std::move(error);  // first wins
    ++s->fault_count;
    shed = s->inbox.size();
    s->inbox.clear();
    s->running = false;
  }
  if (batcher_ != nullptr) {
    // Pending chunks of the dead session must not land in (or stall) a
    // later batch; items already dispatched are shed by RunBatch's
    // disposition pass.
    shed += batcher_->Purge(s) * chunk_samples_;
  }
  stats_.AddFault(category);
  stats_.AddSamplesDropped(shed);
  obs::TraceInstant("session.fault", s->id);
}

void SessionManager::StepDownLocked(Session* s) {
  s->level = static_cast<DegradeLevel>(static_cast<int>(s->level) + 1);
  s->consecutive_misses = 0;
  s->successes_at_level = 0;
  stats_.AddDegradeDown();
  obs::TraceInstant("degrade.down", s->id);
}

void SessionManager::UpdateWatchdogLocked(Session* s, DegradeLevel used_level,
                                          bool probe, double total_ms) {
  const bool miss = total_ms > options_.deadline_ms;
  if (miss) {
    stats_.AddDeadlineMiss();
    ++s->miss_count;
  }
  if (probe) {
    if (miss) {
      // The rung above emitted but is still over budget — stay degraded
      // and restart the probe countdown.
      s->successes_at_level = 0;
    } else {
      // Recovery: the probe chunk ran a rung up within budget.
      s->level = used_level;
      s->consecutive_misses = 0;
      s->successes_at_level = 0;
      stats_.AddDegradeUp();
      obs::TraceInstant("degrade.up", s->id);
    }
    return;
  }
  if (miss) {
    s->successes_at_level = 0;
    if (options_.fault.degrade_on_deadline &&
        ++s->consecutive_misses >= options_.fault.deadline_miss_threshold &&
        s->level < DegradeLevel::kSilence) {
      StepDownLocked(s);
    }
    return;
  }
  s->consecutive_misses = 0;
  if (s->level > s->top_level) ++s->successes_at_level;
}

DegradeLevel SessionManager::EffectiveLevelLocked(Session* s,
                                                 bool* probe) const {
  *probe = false;
  if (s->level > s->top_level &&
      s->successes_at_level >= options_.fault.recovery_probe_chunks) {
    *probe = true;
    return static_cast<DegradeLevel>(static_cast<int>(s->level) - 1);
  }
  return s->level;
}

void SessionManager::AbandonStrand(Session* s) {
  // kDropOldest evicted this session's queued strand before it ran. The
  // buffered audio has missed its overshadowing deadline, so discard it
  // and return the session to idle — otherwise `running` stays true
  // forever (no strand will ever clear it), later Submits never
  // redispatch, Flush fails its idle check, and Drain deadlocks on the
  // leaked in_flight_ count. Runs on the thread whose Submit caused the
  // eviction; the evicted task itself can no longer run.
  std::size_t discarded = 0;
  {
    std::lock_guard lock(s->mu);
    discarded = s->inbox.size();
    s->inbox.clear();
    s->running = false;
  }
  if (batcher_ != nullptr) {
    // The session's already-popped chunks waiting in its batcher lane are
    // part of the evicted backlog: purge them so none lands in a later
    // batch (in-flight batch items complete normally).
    discarded += batcher_->Purge(s) * chunk_samples_;
  }
  stats_.AddSamplesDropped(discarded);
  obs::TraceInstant("strand.drop", s->id);
  FinishStrand();
}

void SessionManager::BeginStrand() {
  std::lock_guard lock(drain_mu_);
  ++in_flight_;
}

void SessionManager::FinishStrand() {
  std::size_t left;
  {
    std::lock_guard lock(drain_mu_);
    left = --in_flight_;
  }
  if (left == 0) drain_cv_.notify_all();
}

void SessionManager::Drain() {
  {
    std::unique_lock lock(drain_mu_);
    drain_cv_.wait(lock, [&] { return in_flight_ == 0; });
  }
  // Once no strand is in flight (and the caller guarantees no concurrent
  // Submit), nothing can Enqueue — wait out the batcher's backlog too.
  if (batcher_ != nullptr) batcher_->Drain();
}

std::optional<audio::Waveform> SessionManager::Flush(SessionId id) {
  Session* s = GetSession(id);
  {
    std::lock_guard lock(s->mu);
    if (s->error.has_value()) return std::nullopt;  // tail died with the fault
    NEC_CHECK_MSG(!s->running && s->inbox.empty(),
                  "Flush requires an idle session — call Drain() first");
  }
  const auto t0 = std::chrono::steady_clock::now();
  std::optional<audio::Waveform> out = s->proc.Flush();
  if (out.has_value()) {
    // A flushed tail runs synchronously on the caller: no queue wait, so
    // its end-to-end latency IS its processing latency.
    stats_.AddChunk(MsSince(t0));
    stats_.AddChunkE2E(MsSince(t0));
  }
  return out;
}

audio::Waveform SessionManager::TakeOutput(
    SessionId id, std::chrono::steady_clock::time_point* produced_since) {
  Session* s = GetSession(id);
  std::lock_guard lock(s->mu);
  if (produced_since != nullptr && s->output.size() > 0) {
    *produced_since = s->output_since;
  }
  return std::exchange(s->output, audio::Waveform());
}

runtime::SessionStatus SessionManager::SessionStatus(SessionId id) const {
  Session* s = GetSession(id);
  std::lock_guard lock(s->mu);
  runtime::SessionStatus status;
  if (s->error.has_value()) {
    status.state = SessionState::kFaulted;
    status.error = s->error;
  } else if (s->running) {
    status.state = SessionState::kRunning;
  } else {
    status.state = SessionState::kIdle;
  }
  status.level = s->level;
  status.chunks_emitted = s->chunk_count;
  status.faults = s->fault_count;
  status.deadline_misses = s->miss_count;
  return status;
}

void SessionManager::ResetSession(SessionId id) {
  Session* s = GetSession(id);
  {
    std::lock_guard lock(s->mu);
    NEC_CHECK_MSG(!s->running,
                  "ResetSession requires a quiescent session — a faulted "
                  "one, or Drain() first");
    s->error.reset();
    s->inbox.clear();
    s->level = s->top_level;
    s->consecutive_misses = 0;
    s->successes_at_level = 0;
  }
  if (batcher_ != nullptr) batcher_->Purge(s);
  // Quiescent by contract, so the strand-owned processor is safe to touch
  // from here: fresh stream — empty buffer, modulation latch re-latches.
  s->proc.Reset();
  stats_.AddSessionReset();
}

bool SessionManager::SessionQuiescent(SessionId id) const {
  Session* s = GetSession(id);
  {
    std::lock_guard lock(s->mu);
    if (s->running || !s->inbox.empty()) return false;
  }
  // Batched mode: the strand parks while popped chunks still sit in the
  // session's batcher lane (or ride a running batch) — those mutate the
  // processor when they complete, so the session is not quiescent yet.
  return batcher_ == nullptr || batcher_->idle_for(s);
}

std::optional<SessionSnapshot> SessionManager::ExportSession(SessionId id) {
  Session* s = GetSession(id);
  {
    std::lock_guard lock(s->mu);
    if (s->error.has_value()) return std::nullopt;
    NEC_CHECK_MSG(!s->running && s->inbox.empty(),
                  "ExportSession requires a quiescent session");
  }
  NEC_CHECK_MSG(batcher_ == nullptr || batcher_->idle_for(s),
                "ExportSession with chunks still in the batcher");
  // Quiescent by contract, so the strand-owned processor is safe to read.
  SessionSnapshot snapshot;
  const auto tail = s->proc.buffered_samples();
  snapshot.tail.assign(tail.begin(), tail.end());
  snapshot.mod_reference_peak = s->proc.modulation_reference_peak();
  {
    std::lock_guard lock(s->mu);
    snapshot.chunks_emitted = s->chunk_count;
  }
  return snapshot;
}

void SessionManager::RestoreSession(SessionId id,
                                    const SessionSnapshot& snapshot) {
  Session* s = GetSession(id);
  {
    std::lock_guard lock(s->mu);
    NEC_CHECK_MSG(!s->running && s->inbox.empty() && !s->error.has_value() &&
                      s->chunk_count == 0,
                  "RestoreSession requires a fresh session");
    s->chunk_count = snapshot.chunks_emitted;
  }
  // Fresh by contract — RestoreStreamState re-checks the processor side.
  s->proc.RestoreStreamState(snapshot.tail, snapshot.mod_reference_peak);
}

core::ModuleTimings SessionManager::SessionTimings(SessionId id) const {
  return GetSession(id)->proc.timings();
}

RuntimeStatsSnapshot SessionManager::Stats() const {
  return stats_.Snapshot(
      PoolSample{.queue_depth = pool_.queue_depth(),
                 .dispatch_drops = pool_.dropped(),
                 .queue_peak_depth = pool_.queue_peak_depth(),
                 .worker_exceptions = pool_.task_exceptions()});
}

std::size_t SessionManager::num_sessions() const {
  std::lock_guard lock(sessions_mu_);
  return sessions_.size();
}

}  // namespace nec::runtime
