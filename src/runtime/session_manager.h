// Concurrent multi-session protection service.
//
// The paper's deployment loop (§VI-C) protects one target on one stream;
// SessionManager scales that to many concurrent rooms/recorders. Each
// session wraps an enrolled NecPipeline + StreamingProcessor exactly like
// the single-threaded path — sessions differ only in *who* is enrolled —
// while all sessions share one immutable trained Selector/SpeakerEncoder
// weight set via shared_ptr (Selector::Infer is const; see nn/layers.h).
//
// Concurrency model: per-session *strands* over a shared ThreadPool. Audio
// submitted to a session lands in that session's inbox; at most one pool
// task per session is in flight at any time, and it drains the inbox chunk
// by chunk through the session's StreamingProcessor. Chunks of one session
// therefore process strictly in submission order on a single logical
// stream — per-session output is bit-identical to running the sequential
// StreamingProcessor — while chunks of *different* sessions run in
// parallel across the pool's workers.
//
// Fault isolation (DESIGN.md §5f): every exception raised while processing
// a session's audio is caught AT THE SESSION BOUNDARY. The session
// transitions to SessionState::kFaulted with a recorded SessionError
// (taxonomy in runtime/fault.h), sheds its backlog, and rejects further
// Submits until ResetSession() — every other session keeps protecting its
// room. A poisoned batch is bisected and retried in sub-batches so
// one bad chunk never drops other sessions' output. Chunks that blow the
// deadline budget (or fail transiently past the retry budget) can instead
// step down a graceful-degradation ladder (neural → LAS → silence) with
// automatic recovery probes back up — see Options::fault.
//
// Lock discipline: Session::mu guards inbox/output/running plus the fault
// and degradation state; the StreamingProcessor itself is touched only by
// the session's single active strand task (hand-off between consecutive
// strand tasks is ordered by Session::mu and the pool queue's mutex, so no
// additional lock is needed). RuntimeStats is all-atomic.
//
// Continuous batching (Options::max_batch > 1, neural selector only):
// strands stop running the selector themselves — they buffer samples, pop
// ready chunks, and enqueue them on the ContinuousBatcher, which admits
// them into the next batched forward as soon as a dispatch slot frees
// (earliest deadline first across sessions, FIFO within a session — see
// batcher.h). Options::workers dispatch threads run RunBatch concurrently
// on DISJOINT session sets: the batcher claims a session's lane
// exclusively while its chunks are in a running batch, so each session's
// StreamingProcessor completion state is still touched by one thread at a
// time and stream order — and with it the modulation-reference latch — is
// exactly the sequential path's. In this mode a session's
// StreamingProcessor is split between threads by member: the strand owns
// the sample buffer, the owning dispatcher owns the STFT scratch /
// modulation latch / timings — disjoint state, see streaming.h. Degraded
// sessions' chunks still ride the lane FIFO but are generated singly by
// the dispatcher that claimed the lane, so per-session completion order
// is preserved across ladder transitions.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <vector>

#include "audio/waveform.h"
#include "core/pipeline.h"
#include "core/streaming.h"
#include "encoder/encoder.h"
#include "runtime/batcher.h"
#include "runtime/fault.h"
#include "runtime/stats.h"
#include "runtime/thread_pool.h"

namespace nec::runtime {

/// How Submit treats corrupt (NaN/Inf/wild-amplitude) audio.
enum class BadInputPolicy {
  kSanitize,  ///< repair in place (NaN/Inf → 0, wild → ±1), count it
  kReject,    ///< bounce the whole Submit with a typed kBadInput error
  kTrust,     ///< skip the scan entirely (caller vouches for the stream)
};

/// What happens when a chunk keeps failing after the retry budget.
enum class FaultPolicy {
  kFault,    ///< transition the session to kFaulted (default)
  kDegrade,  ///< step down the degradation ladder and keep serving
};

/// One session's externally visible health, returned by SessionStatus().
struct SessionStatus {
  SessionState state = SessionState::kIdle;
  std::optional<SessionError> error;  ///< set iff state == kFaulted
  DegradeLevel level = DegradeLevel::kNeural;  ///< current ladder rung
  std::uint64_t chunks_emitted = 0;
  std::uint64_t faults = 0;           ///< lifetime kFaulted transitions
  std::uint64_t deadline_misses = 0;  ///< chunks over budget (lifetime)
};

/// Typed Submit outcome. ok() == no error. On error, `error->category`
/// says what to do: kOverload — the dispatch was bounced by kReject
/// backpressure but the samples ARE buffered (retry with an empty span);
/// kBadInput — the samples were rejected and NOT buffered; anything else
/// is the recorded error of a faulted session (samples not buffered;
/// ResetSession() to restore service).
struct SubmitResult {
  std::optional<SessionError> error;
  bool ok() const { return !error.has_value(); }
  explicit operator bool() const { return ok(); }
};

/// The complete mid-stream state of a healthy session, exported for
/// migration to another SessionManager sharing the same weight set
/// (fleet draining reshard, DESIGN.md §5h). Enrollment does not travel —
/// it is seed-deterministic, so the re-enrolling side rebuilds it; what
/// does travel is everything the stream computed so far that future
/// output depends on: the partial-chunk tail and the stream-wide
/// modulation-reference latch.
struct SessionSnapshot {
  std::vector<float> tail;              ///< buffered partial-chunk samples
  double mod_reference_peak = 0.0;      ///< 0.0 = not yet latched
  std::uint64_t chunks_emitted = 0;     ///< carried for status continuity
};

class SessionManager {
 public:
  using SessionId = std::size_t;

  /// Fault-tolerance knobs (all containment is active regardless; these
  /// tune the reaction).
  struct FaultOptions {
    FaultPolicy on_error = FaultPolicy::kFault;
    BadInputPolicy bad_input = BadInputPolicy::kSanitize;
    /// Enables the deadline watchdog: consecutive chunks over
    /// Options::deadline_ms step the session down the ladder; sustained
    /// health probes it back up. Off by default — degradation changes
    /// output bits, so it must be an explicit opt-in.
    bool degrade_on_deadline = false;
    /// Consecutive deadline misses before stepping down one rung.
    std::size_t deadline_miss_threshold = 3;
    /// In-budget chunks at a degraded rung before probing one rung up.
    std::size_t recovery_probe_chunks = 8;
    /// Chunk-level retries before the on_error policy applies.
    std::size_t max_retries = 1;
    /// Sleep between retries (grows linearly with the attempt number).
    double retry_backoff_ms = 0.0;
  };

  struct Options {
    std::size_t workers = 4;
    std::size_t queue_capacity = 1024;
    /// Backpressure for strand dispatches when the pool queue is full.
    OverflowPolicy policy = OverflowPolicy::kBlock;
    /// Chunk duration per session (paper: 1 s, Table II).
    double chunk_s = 1.0;
    core::SelectorKind kind = core::SelectorKind::kNeural;

    // --- Continuous batching (DESIGN.md §5e). max_batch = 1 disables the
    // batcher and keeps the per-strand Push path. Batching applies to
    // the neural selector only (the LAS ablation has no batched forward).
    // When enabled, `workers` also sets the batcher's dispatch-thread
    // count — the heavy compute moves off the pool strands onto the
    // dispatchers, so `workers` keeps meaning "concurrent selector
    // forwards" in both modes.
    std::size_t max_batch = 1;
    /// Per-chunk end-to-end budget (paper: ~300 ms overshadowing
    /// tolerance). The batcher admits chunks earliest-deadline-first
    /// against it, and the deadline watchdog (if enabled) judges chunk
    /// processing time against it.
    double deadline_ms = 300.0;

    FaultOptions fault = {};  ///< containment / degradation / sanitization
  };

  /// All sessions share `selector` and `encoder` (no weight copies).
  /// (`options` has no `= {}` default: GCC bug 88165 rejects braced
  /// defaults of nested aggregates with member initializers.)
  SessionManager(std::shared_ptr<const core::Selector> selector,
                 std::shared_ptr<const encoder::SpeakerEncoder> encoder,
                 core::PipelineOptions pipeline_options, Options options);

  /// Drains in-flight work and joins the pool.
  ~SessionManager();

  SessionManager(const SessionManager&) = delete;
  SessionManager& operator=(const SessionManager&) = delete;

  /// Opens a protection session enrolled on `references` (paper: 3 clips
  /// of 3 s). Thread-safe; returns a dense id.
  SessionId CreateSession(std::span<const audio::Waveform> references);

  /// Feeds monitored samples to a session and schedules processing on the
  /// pool. See SubmitResult for the error contract; in brief: a kOverload
  /// error means the strand dispatch was bounced by kReject backpressure
  /// but the samples are ALREADY buffered — retry with an empty span
  /// (`Submit(id, {})`) until it succeeds; re-submitting the same samples
  /// would duplicate them. Corrupt audio is sanitized or rejected per
  /// Options::fault.bad_input; a faulted session sheds input until
  /// ResetSession().
  ///
  /// Under kDropOldest a full pool queue evicts the oldest *queued* strand
  /// to admit this one. The evicted session is unwound, not wedged: its
  /// buffered-but-unprocessed audio is discarded (those chunks missed
  /// their deadline — that is what drop-oldest means) and the session goes
  /// back to idle, so later Submits redispatch and Drain/Flush still work.
  /// Drops are visible as `dispatch_drops` / `samples_dropped` in Stats().
  ///
  /// Thread-safe across sessions; calls for one session must come from one
  /// producer (a stream is ordered).
  ///
  /// `trace_flow` (optional) is a wire-carried trace flow id
  /// (kTraceContext, DESIGN.md §5g): when nonzero it attaches to the
  /// FIRST chunk that becomes ready from these samples, so that chunk's
  /// shard.compute span and flow-end event carry the remote sender's id
  /// and the merged fleet trace stitches client-submit → shard-compute
  /// into one flow. Zero (the default) keeps the local-only behavior.
  SubmitResult Submit(SessionId id, std::span<const float> samples,
                      std::uint64_t trace_flow = 0);

  /// Blocks until every strand dispatched so far has finished. Sessions
  /// may still hold partial-chunk tails (see Flush).
  void Drain();

  /// Zero-pads and processes a session's final partial chunk, if any.
  /// Call after Drain with no concurrent Submit to this session. Returns
  /// nullopt for a faulted session (its tail is part of the shed backlog).
  std::optional<audio::Waveform> Flush(SessionId id);

  /// Moves out everything the session produced so far (modulated shadow at
  /// the air rate, in stream order). Thread-safe. `produced_since`
  /// (optional) receives the instant the oldest returned sample was
  /// appended — the anchor for the reply hop of the latency decomposition
  /// (time the output sat waiting for a taker); untouched when the
  /// returned waveform is empty.
  audio::Waveform TakeOutput(
      SessionId id,
      std::chrono::steady_clock::time_point* produced_since = nullptr);

  /// One session's health: lifecycle state, recorded error (if faulted),
  /// current degradation rung, and lifetime counters. Thread-safe.
  runtime::SessionStatus SessionStatus(SessionId id) const;

  /// Returns a faulted (or idle) session to service: clears the recorded
  /// error, discards any buffered backlog and partial-chunk tail, resets
  /// the degradation ladder to the top, and starts a fresh stream (the
  /// modulation-reference latch re-latches). Call only while the session
  /// is quiescent — after it reported kFaulted, or after Drain() with no
  /// concurrent Submit. Previously produced output remains takeable.
  void ResetSession(SessionId id);

  /// True when the session can be exported right now: no strand in
  /// flight, empty inbox, and (in batched mode) no chunks pending or in
  /// a running batch. With no concurrent Submit for this session,
  /// quiescence is stable once observed. Thread-safe.
  bool SessionQuiescent(SessionId id) const;

  /// Exports the session's mid-stream state for migration. Requires
  /// quiescence (NEC_CHECK) and a healthy session — a faulted one
  /// returns nullopt (its backlog was shed; there is no stream left to
  /// continue). The session itself is untouched: callers typically
  /// ResetSession() afterwards to reclaim it.
  std::optional<SessionSnapshot> ExportSession(SessionId id);

  /// Installs a migrated snapshot onto a freshly created (never
  /// submitted-to) session, making its future output bit-identical to
  /// the exporting session having continued. NEC_CHECKs freshness.
  void RestoreSession(SessionId id, const SessionSnapshot& snapshot);

  /// Per-module latency accounting of one session's processor. Call while
  /// the session is idle (after Drain): the counters are strand-owned.
  core::ModuleTimings SessionTimings(SessionId id) const;

  RuntimeStatsSnapshot Stats() const;

  std::size_t num_sessions() const;
  std::size_t workers() const { return pool_.workers(); }
  std::size_t chunk_samples() const { return chunk_samples_; }

  /// True when ready chunks route through the continuous batcher.
  bool batching_enabled() const { return batcher_ != nullptr; }

  /// Stops accepting strand dispatches, drains admitted ones, joins.
  void Shutdown();

 private:
  struct Session {
    Session(std::shared_ptr<const core::Selector> selector,
            std::shared_ptr<const encoder::SpeakerEncoder> encoder,
            const core::PipelineOptions& pipeline_options, double chunk_s,
            core::SelectorKind kind, SessionId session_id)
        : pipeline(std::move(selector), std::move(encoder),
                   pipeline_options),
          proc(pipeline, chunk_s, kind),
          id(session_id),
          top_level(kind == core::SelectorKind::kNeural
                        ? DegradeLevel::kNeural
                        : DegradeLevel::kLasFallback),
          level(top_level) {}

    core::NecPipeline pipeline;
    core::StreamingProcessor proc;  ///< strand-owned, see header comment
    const SessionId id;             ///< fault-injection key + status

    /// Per-chunk reuse buffers for the Into hot path (popped chunk,
    /// generated shadow, modulated output). Same exclusivity contract as
    /// `proc`: touched only by the strand or the dispatcher holding the
    /// session's lane, so steady-state chunks recycle their capacity
    /// instead of allocating.
    audio::Waveform chunk_buf, shadow_buf, mod_buf;

    std::mutex mu;
    std::deque<float> inbox;   ///< guarded by mu
    /// Wire-carried trace flow id (kTraceContext) awaiting its chunk:
    /// consumed by the next chunk popped from this session's stream.
    /// Guarded by mu.
    std::uint64_t wire_flow = 0;
    /// When the inbox last went empty → non-empty: the arrival time of the
    /// oldest unconsumed samples, feeding end-to-end latency accounting on
    /// the unbatched path. Guarded by mu.
    std::chrono::steady_clock::time_point inbox_since{};
    audio::Waveform output;    ///< guarded by mu
    /// When `output` last went empty → non-empty: production time of the
    /// oldest un-taken sample (reply-hop anchor). Guarded by mu.
    std::chrono::steady_clock::time_point output_since{};
    bool running = false;      ///< strand in flight; guarded by mu

    // --- Fault / degradation state, all guarded by mu.
    std::optional<SessionError> error;  ///< set → kFaulted (absorbing)
    const DegradeLevel top_level;  ///< best rung this session can run at
    DegradeLevel level;            ///< current rung
    std::size_t consecutive_misses = 0;
    std::size_t successes_at_level = 0;  ///< feeds the recovery probe
    std::uint64_t chunk_count = 0;
    std::uint64_t fault_count = 0;
    std::uint64_t miss_count = 0;
  };

  Session* GetSession(SessionId id) const;
  void RunStrand(Session* session);
  void RunStrandBatched(Session* session);
  /// Batch callback; up to Options::workers run concurrently, always on
  /// disjoint session sets (lane exclusivity, see batcher.h).
  void RunBatch(std::vector<ContinuousBatcher::Item>&& items);
  void AbandonStrand(Session* session);
  void BeginStrand();
  void FinishStrand();

  /// Generates + completes one chunk at the session's current rung, with
  /// retry/backoff, the deadline watchdog, and recovery probes. `ready` is
  /// when the chunk became processable (inbox arrival / batcher enqueue)
  /// and anchors the end-to-end latency record. `flow` (0 = none) links
  /// the chunk's shard.compute span and flow-end back to a remote
  /// sender's trace. Returns false iff the session faulted. Runs on the
  /// strand (unbatched) or the owning dispatch thread (batched,
  /// degraded/poisoned items).
  bool ProcessOneChunk(Session* session, const audio::Waveform& chunk,
                       std::chrono::steady_clock::time_point ready,
                       std::uint64_t flow = 0);
  /// Generates the shadow at `level` into the session's reuse buffer
  /// (session->shadow_buf via caller) — the zero-allocation strand path.
  void GenerateShadowAtLevelInto(Session* session,
                                 const audio::Waveform& chunk,
                                 DegradeLevel level, audio::Waveform& out);
  /// Batched forward over [begin, end) with bisection: a sub-batch that
  /// throws is split until the poisoned item is isolated; its slot gets an
  /// error instead of a shadow, every other slot completes normally.
  void GenerateShadowsBisect(
      std::vector<ContinuousBatcher::Item>& items,
      const std::vector<std::size_t>& indices, std::size_t begin,
      std::size_t end, std::vector<std::optional<audio::Waveform>>& shadows,
      std::vector<std::optional<SessionError>>& errors);

  /// Applies the on_error policy to a chunk whose batched generation
  /// failed: step down the ladder and regenerate singly (kDegrade, so the
  /// stream loses no samples), or fault the session.
  void HandleGenerationError(Session* session, audio::Waveform chunk,
                             SessionError error,
                             std::chrono::steady_clock::time_point ready);
  /// Records the fault, sheds the session's backlog (inbox + pending
  /// batcher items), and returns it to a non-running state.
  void FaultSession(Session* session, SessionError error);
  /// Ladder step-down with stats. Caller holds session->mu.
  void StepDownLocked(Session* session);
  /// Watchdog bookkeeping after a successfully emitted chunk. Caller
  /// holds session->mu. `used_level`/`probe` describe how the chunk ran.
  void UpdateWatchdogLocked(Session* session, DegradeLevel used_level,
                            bool probe, double total_ms);
  /// The rung the next chunk should run at (may be one above the current
  /// rung when a recovery probe is due). Caller holds session->mu.
  DegradeLevel EffectiveLevelLocked(Session* session, bool* probe) const;

  const Options options_;
  const core::PipelineOptions pipeline_options_;
  const std::shared_ptr<const core::Selector> selector_;
  const std::shared_ptr<const encoder::SpeakerEncoder> encoder_;
  std::size_t chunk_samples_ = 0;

  mutable std::mutex sessions_mu_;
  std::vector<std::unique_ptr<Session>> sessions_;

  mutable std::mutex drain_mu_;
  std::condition_variable drain_cv_;
  std::size_t in_flight_ = 0;  ///< active strands; guarded by drain_mu_

  RuntimeStats stats_;
  /// Non-null iff Options::max_batch > 1 and the selector is neural.
  /// Declared before pool_: workers Enqueue into the batcher, and the
  /// batcher callbacks touch sessions/stats — Shutdown() stops the pool
  /// first, then the batcher, and destruction runs in the reverse of
  /// declaration so both are torn down before the state they touch.
  std::unique_ptr<ContinuousBatcher> batcher_;
  ThreadPool pool_;  ///< last member: workers die before state above
};

}  // namespace nec::runtime
