// Concurrent multi-session protection service.
//
// The paper's deployment loop (§VI-C) protects one target on one stream;
// SessionManager scales that to many concurrent rooms/recorders. Each
// session wraps an enrolled NecPipeline + StreamingProcessor exactly like
// the single-threaded path — sessions differ only in *who* is enrolled —
// while all sessions share one immutable trained Selector/SpeakerEncoder
// weight set via shared_ptr (Selector::Infer is const; see nn/layers.h).
//
// Concurrency model: per-session *strands* over a shared ThreadPool. Audio
// submitted to a session lands in that session's inbox; at most one pool
// task per session is in flight at any time, and it drains the inbox chunk
// by chunk through the session's StreamingProcessor. Chunks of one session
// therefore process strictly in submission order on a single logical
// stream — per-session output is bit-identical to running the sequential
// StreamingProcessor — while chunks of *different* sessions run in
// parallel across the pool's workers.
//
// Lock discipline: Session::mu guards inbox/output/running; the
// StreamingProcessor itself is touched only by the session's single active
// strand task (hand-off between consecutive strand tasks is ordered by
// Session::mu and the pool queue's mutex, so no additional lock is
// needed). RuntimeStats is all-atomic.
//
// Micro-batching (Options::max_batch > 1, neural selector only): strands
// stop running the selector themselves — they buffer samples, pop ready
// chunks, and enqueue them on the MicroBatcher. The coalescer thread
// gathers chunks across sessions, runs ONE batched forward
// (GenerateShadowBatch) and completes each chunk in enqueue order, which
// preserves per-session stream order (one strand at a time per session
// pops in order; the batcher is FIFO) and therefore bit-exactness with the
// unbatched path. In this mode a session's StreamingProcessor is split
// between two threads by member: the strand owns the sample buffer, the
// coalescer owns the STFT scratch / modulation latch / timings — disjoint
// state, see streaming.h.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <vector>

#include "audio/waveform.h"
#include "core/pipeline.h"
#include "core/streaming.h"
#include "encoder/encoder.h"
#include "runtime/batcher.h"
#include "runtime/stats.h"
#include "runtime/thread_pool.h"

namespace nec::runtime {

class SessionManager {
 public:
  using SessionId = std::size_t;

  struct Options {
    std::size_t workers = 4;
    std::size_t queue_capacity = 1024;
    /// Backpressure for strand dispatches when the pool queue is full.
    OverflowPolicy policy = OverflowPolicy::kBlock;
    /// Chunk duration per session (paper: 1 s, Table II).
    double chunk_s = 1.0;
    core::SelectorKind kind = core::SelectorKind::kNeural;

    // --- Micro-batching (DESIGN.md §5e). max_batch = 1 disables the
    // coalescer and keeps the per-strand Push path. Batching applies to
    // the neural selector only (the LAS ablation has no batched forward).
    std::size_t max_batch = 1;
    /// Hard cap on how long a ready chunk may be held for coalescing.
    std::uint64_t max_wait_us = 5000;
    /// Per-chunk processing budget (paper: ~300 ms overshadowing
    /// tolerance); the coalescer's hold window shrinks as observed batch
    /// compute time eats into it.
    double deadline_ms = 300.0;
  };

  /// All sessions share `selector` and `encoder` (no weight copies).
  /// (`options` has no `= {}` default: GCC bug 88165 rejects braced
  /// defaults of nested aggregates with member initializers.)
  SessionManager(std::shared_ptr<const core::Selector> selector,
                 std::shared_ptr<const encoder::SpeakerEncoder> encoder,
                 core::PipelineOptions pipeline_options, Options options);

  /// Drains in-flight work and joins the pool.
  ~SessionManager();

  SessionManager(const SessionManager&) = delete;
  SessionManager& operator=(const SessionManager&) = delete;

  /// Opens a protection session enrolled on `references` (paper: 3 clips
  /// of 3 s). Thread-safe; returns a dense id.
  SessionId CreateSession(std::span<const audio::Waveform> references);

  /// Feeds monitored samples to a session and schedules processing on the
  /// pool. Returns false only if a needed strand dispatch was bounced by
  /// the kReject policy — the samples are ALREADY buffered at that point,
  /// so retry with an empty span (`Submit(id, {})`) until it returns true;
  /// re-submitting the same samples would duplicate them. Unprocessed
  /// buffered chunks make a later Flush fail its idle-session check.
  ///
  /// Under kDropOldest a full pool queue evicts the oldest *queued* strand
  /// to admit this one. The evicted session is unwound, not wedged: its
  /// buffered-but-unprocessed audio is discarded (those chunks missed
  /// their deadline — that is what drop-oldest means) and the session goes
  /// back to idle, so later Submits redispatch and Drain/Flush still work.
  /// Drops are visible as `dispatch_drops` / `samples_dropped` in Stats().
  ///
  /// Thread-safe across sessions; calls for one session must come from one
  /// producer (a stream is ordered).
  bool Submit(SessionId id, std::span<const float> samples);

  /// Blocks until every strand dispatched so far has finished. Sessions
  /// may still hold partial-chunk tails (see Flush).
  void Drain();

  /// Zero-pads and processes a session's final partial chunk, if any.
  /// Call after Drain with no concurrent Submit to this session.
  std::optional<audio::Waveform> Flush(SessionId id);

  /// Moves out everything the session produced so far (modulated shadow at
  /// the air rate, in stream order). Thread-safe.
  audio::Waveform TakeOutput(SessionId id);

  /// Per-module latency accounting of one session's processor. Call while
  /// the session is idle (after Drain): the counters are strand-owned.
  core::ModuleTimings SessionTimings(SessionId id) const;

  RuntimeStatsSnapshot Stats() const;

  std::size_t num_sessions() const;
  std::size_t workers() const { return pool_.workers(); }
  std::size_t chunk_samples() const { return chunk_samples_; }

  /// True when ready chunks route through the micro-batching coalescer.
  bool batching_enabled() const { return batcher_ != nullptr; }

  /// Stops accepting strand dispatches, drains admitted ones, joins.
  void Shutdown();

 private:
  struct Session {
    Session(std::shared_ptr<const core::Selector> selector,
            std::shared_ptr<const encoder::SpeakerEncoder> encoder,
            const core::PipelineOptions& pipeline_options, double chunk_s,
            core::SelectorKind kind)
        : pipeline(std::move(selector), std::move(encoder),
                   pipeline_options),
          proc(pipeline, chunk_s, kind) {}

    core::NecPipeline pipeline;
    core::StreamingProcessor proc;  ///< strand-owned, see header comment

    std::mutex mu;
    std::deque<float> inbox;   ///< guarded by mu
    audio::Waveform output;    ///< guarded by mu
    bool running = false;      ///< strand in flight; guarded by mu
  };

  Session* GetSession(SessionId id) const;
  void RunStrand(Session* session);
  void RunStrandBatched(Session* session);
  void RunBatch(std::vector<MicroBatcher::Item>&& items);
  void AbandonStrand(Session* session);
  void BeginStrand();
  void FinishStrand();

  const Options options_;
  const core::PipelineOptions pipeline_options_;
  const std::shared_ptr<const core::Selector> selector_;
  const std::shared_ptr<const encoder::SpeakerEncoder> encoder_;
  std::size_t chunk_samples_ = 0;

  mutable std::mutex sessions_mu_;
  std::vector<std::unique_ptr<Session>> sessions_;

  mutable std::mutex drain_mu_;
  std::condition_variable drain_cv_;
  std::size_t in_flight_ = 0;  ///< active strands; guarded by drain_mu_

  RuntimeStats stats_;
  /// Non-null iff Options::max_batch > 1 and the selector is neural.
  /// Declared before pool_: workers Enqueue into the batcher, and the
  /// batcher callback touches sessions/stats — Shutdown() stops the pool
  /// first, then the batcher, and destruction runs in the reverse of
  /// declaration so both are torn down before the state they touch.
  std::unique_ptr<MicroBatcher> batcher_;
  ThreadPool pool_;  ///< last member: workers die before state above
};

}  // namespace nec::runtime
