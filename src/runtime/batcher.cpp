#include "runtime/batcher.h"

#include <algorithm>
#include <utility>

#include "common/check.h"
#include "obs/trace.h"

namespace nec::runtime {

using Clock = std::chrono::steady_clock;

MicroBatcher::MicroBatcher(Options options, BatchFn fn)
    : options_(options), fn_(std::move(fn)) {
  NEC_CHECK(options_.max_batch >= 1);
  NEC_CHECK(options_.deadline_ms > 0.0);
  NEC_CHECK(fn_ != nullptr);
  thread_ = std::thread([this] { Loop(); });
}

MicroBatcher::~MicroBatcher() { Shutdown(); }

void MicroBatcher::Enqueue(void* key, audio::Waveform chunk) {
  // Flow arrow tail: the matching head is emitted by the batch callback
  // when it completes this chunk, linking enqueue → coalesce → dispatch
  // across threads in the exported trace.
  std::uint64_t flow_id = 0;
  obs::TraceRecorder& rec = obs::TraceRecorder::Global();
  if (rec.enabled()) {
    flow_id = rec.NextFlowId();
    rec.RecordFlow(obs::TraceEventKind::kFlowBegin, "chunk.flow", flow_id);
  }
  {
    std::lock_guard lock(mu_);
    NEC_CHECK_MSG(!shutdown_, "Enqueue after MicroBatcher::Shutdown");
    pending_.push_back(Item{key, std::move(chunk), Clock::now(), flow_id});
  }
  cv_.notify_all();
}

std::size_t MicroBatcher::Purge(void* key) {
  std::lock_guard lock(mu_);
  const std::size_t before = pending_.size();
  std::erase_if(pending_, [key](const Item& it) { return it.key == key; });
  const std::size_t removed = before - pending_.size();
  if (pending_.empty() && !busy_) drained_cv_.notify_all();
  return removed;
}

std::size_t MicroBatcher::pending_for(void* key) const {
  std::lock_guard lock(mu_);
  std::size_t n = 0;
  for (const Item& it : pending_) n += (it.key == key) ? 1 : 0;
  return n;
}

void MicroBatcher::Drain() {
  std::unique_lock lock(mu_);
  drained_cv_.wait(lock, [&] { return pending_.empty() && !busy_; });
}

void MicroBatcher::Shutdown() {
  {
    std::lock_guard lock(mu_);
    if (shutdown_) {
      // Already requested; fall through to join exactly once below.
    }
    shutdown_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

std::size_t MicroBatcher::pending() const {
  std::lock_guard lock(mu_);
  return pending_.size();
}

std::chrono::microseconds MicroBatcher::EffectiveWaitUs() const {
  // Budget left for coalescing once the expected batch compute time is
  // reserved out of the chunk deadline; never more than the configured cap.
  const double budget_us =
      std::max(0.0, (options_.deadline_ms - ewma_batch_ms_) * 1000.0);
  const double capped =
      std::min(budget_us, static_cast<double>(options_.max_wait_us));
  return std::chrono::microseconds(static_cast<std::int64_t>(capped));
}

void MicroBatcher::Loop() {
  obs::TraceRecorder::SetThreadName("coalescer");
  std::unique_lock lock(mu_);
  for (;;) {
    cv_.wait(lock, [&] { return shutdown_ || !pending_.empty(); });
    if (pending_.empty()) {
      if (shutdown_) return;
      continue;
    }

    // Coalesce: hold the oldest chunk at most EffectiveWaitUs past its
    // enqueue, or until a full batch has gathered. A Purge can empty the
    // queue mid-wait — re-check and go back to sleep if so.
    const Clock::time_point hold_until =
        pending_.front().enqueued + EffectiveWaitUs();
    while (!shutdown_ && !pending_.empty() &&
           pending_.size() < options_.max_batch &&
           Clock::now() < hold_until) {
      cv_.wait_until(lock, hold_until, [&] {
        return shutdown_ || pending_.empty() ||
               pending_.size() >= options_.max_batch;
      });
    }
    if (pending_.empty()) {
      if (!busy_) drained_cv_.notify_all();
      continue;
    }

    const std::size_t n = std::min(pending_.size(), options_.max_batch);
    std::vector<Item> batch;
    batch.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      batch.push_back(std::move(pending_.front()));
      pending_.pop_front();
    }
    busy_ = true;
    lock.unlock();

    const Clock::time_point t0 = Clock::now();
    fn_(std::move(batch));
    const double batch_ms =
        std::chrono::duration<double, std::milli>(Clock::now() - t0)
            .count();

    lock.lock();
    // EWMA of batch compute time feeds the deadline-aware hold window.
    ewma_batch_ms_ = ewma_batch_ms_ <= 0.0
                         ? batch_ms
                         : 0.8 * ewma_batch_ms_ + 0.2 * batch_ms;
    busy_ = false;
    if (pending_.empty()) drained_cv_.notify_all();
  }
}

}  // namespace nec::runtime
