#include "runtime/batcher.h"

#include <algorithm>
#include <iterator>
#include <utility>

#include "common/check.h"
#include "obs/trace.h"

namespace nec::runtime {

using Clock = std::chrono::steady_clock;

ContinuousBatcher::ContinuousBatcher(Options options, BatchFn fn)
    : options_(options), fn_(std::move(fn)) {
  NEC_CHECK(options_.max_batch >= 1);
  NEC_CHECK(options_.workers >= 1);
  NEC_CHECK(options_.deadline_ms > 0.0);
  NEC_CHECK(fn_ != nullptr);
  threads_.reserve(options_.workers);
  for (std::size_t i = 0; i < options_.workers; ++i) {
    threads_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ContinuousBatcher::~ContinuousBatcher() { Shutdown(); }

void ContinuousBatcher::Enqueue(void* key, audio::Waveform chunk,
                                std::uint64_t wire_flow) {
  const Clock::time_point now = Clock::now();
  EnqueueWithDeadline(
      key, std::move(chunk),
      now + std::chrono::duration_cast<Clock::duration>(
                std::chrono::duration<double, std::milli>(
                    options_.deadline_ms)),
      wire_flow);
}

void ContinuousBatcher::EnqueueWithDeadline(void* key, audio::Waveform chunk,
                                            Clock::time_point deadline,
                                            std::uint64_t wire_flow) {
  // Flow arrow tail: the matching head is emitted by the batch callback
  // when it completes this chunk, linking enqueue → EDF admission →
  // dispatch across threads in the exported trace. A wire-carried flow
  // id (kTraceContext) is adopted verbatim — its tail was already
  // recorded by the remote sender, so the completion head closes a
  // CROSS-PROCESS arrow in the merged trace.
  std::uint64_t flow_id = wire_flow;
  obs::TraceRecorder& rec = obs::TraceRecorder::Global();
  if (rec.enabled() && flow_id == 0) {
    flow_id = rec.NextFlowId();
    rec.RecordFlow(obs::TraceEventKind::kFlowBegin, "chunk.flow", flow_id);
  }
  {
    std::lock_guard lock(mu_);
    NEC_CHECK_MSG(!shutdown_, "Enqueue after ContinuousBatcher::Shutdown");
    lanes_[key].fifo.push_back(
        Item{key, std::move(chunk), Clock::now(), deadline, flow_id});
    ++pending_count_;
  }
  // One new chunk employs at most one idle dispatcher; the dispatcher
  // re-notifies when it frees a lane with more work behind it.
  cv_.notify_one();
}

std::size_t ContinuousBatcher::Purge(void* key) {
  std::lock_guard lock(mu_);
  auto it = lanes_.find(key);
  if (it == lanes_.end()) return 0;
  const std::size_t removed = it->second.fifo.size();
  it->second.fifo.clear();
  pending_count_ -= removed;
  if (pending_count_ == 0 && active_batches_ == 0) {
    drained_cv_.notify_all();
  }
  // Under shutdown a purge can be what empties the last lane — waiting
  // dispatchers must re-evaluate their exit predicate.
  if (shutdown_ && pending_count_ == 0) cv_.notify_all();
  return removed;
}

std::size_t ContinuousBatcher::pending_for(void* key) const {
  std::lock_guard lock(mu_);
  const auto it = lanes_.find(key);
  return it == lanes_.end() ? 0 : it->second.fifo.size();
}

bool ContinuousBatcher::idle_for(void* key) const {
  std::lock_guard lock(mu_);
  const auto it = lanes_.find(key);
  return it == lanes_.end() ||
         (it->second.fifo.empty() && !it->second.in_flight);
}

void ContinuousBatcher::Drain() {
  std::unique_lock lock(mu_);
  drained_cv_.wait(
      lock, [&] { return pending_count_ == 0 && active_batches_ == 0; });
}

void ContinuousBatcher::Shutdown() {
  {
    std::lock_guard lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : threads_) {
    if (t.joinable()) t.join();
  }
}

std::size_t ContinuousBatcher::pending() const {
  std::lock_guard lock(mu_);
  return pending_count_;
}

bool ContinuousBatcher::HasEligibleLocked() const {
  for (const auto& [key, lane] : lanes_) {
    if (!lane.in_flight && !lane.fifo.empty()) return true;
  }
  return false;
}

bool ContinuousBatcher::GatherLocked(std::vector<Item>& batch,
                                     std::vector<Lane*>& claimed) {
  // Fair-share cap: when several dispatchers are idle, one gather takes
  // only ceil(ready / idle) chunks so the rest dispatch in parallel on the
  // other threads instead of queueing behind one full batch. A lone
  // dispatcher (or a saturated pool) still fills up to max_batch.
  std::size_t ready = 0;
  for (const auto& [key, lane] : lanes_) {
    if (!lane.in_flight && !lane.fifo.empty()) ready += lane.fifo.size();
  }
  if (ready == 0) return false;
  const std::size_t sharers = idle_workers_ + 1;  // waiting peers + me
  const std::size_t cap = std::min(
      options_.max_batch,
      std::max<std::size_t>(1, (ready + sharers - 1) / sharers));

  // EDF admission: repeatedly take the globally most-urgent lane head.
  // A lane this gather already claimed stays eligible — its next head
  // competes on its own deadline, so consecutive chunks of a hot session
  // may ride one batch, still in FIFO order. Lanes claimed by OTHER
  // dispatchers are skipped, which is what serializes a session's stream.
  while (batch.size() < cap) {
    Lane* best = nullptr;
    for (auto& [key, lane] : lanes_) {
      if (lane.fifo.empty()) continue;
      if (lane.in_flight &&
          std::find(claimed.begin(), claimed.end(), &lane) == claimed.end()) {
        continue;
      }
      if (best == nullptr ||
          lane.fifo.front().deadline < best->fifo.front().deadline) {
        best = &lane;
      }
    }
    if (best == nullptr) break;
    if (!best->in_flight) {
      best->in_flight = true;
      claimed.push_back(best);
    }
    batch.push_back(std::move(best->fifo.front()));
    best->fifo.pop_front();
    --pending_count_;
  }
  return !batch.empty();
}

void ContinuousBatcher::WorkerLoop(std::size_t worker_index) {
  // SetThreadName keeps the pointer until trace export — literals only.
  static constexpr const char* kNames[] = {
      "dispatch-0", "dispatch-1", "dispatch-2", "dispatch-3",
      "dispatch-4", "dispatch-5", "dispatch-6", "dispatch-7"};
  obs::TraceRecorder::SetThreadName(
      worker_index < std::size(kNames) ? kNames[worker_index] : "dispatch");
  std::unique_lock lock(mu_);
  for (;;) {
    ++idle_workers_;
    cv_.wait(lock, [&] {
      // Pending chunks in a lane another dispatcher still owns are not
      // eligible yet — keep waiting even under shutdown; the owning
      // dispatcher frees the lane and re-notifies when its batch returns.
      return HasEligibleLocked() || (shutdown_ && pending_count_ == 0);
    });
    --idle_workers_;
    if (!HasEligibleLocked()) return;  // shutdown with nothing left to serve

    std::vector<Item> batch;
    std::vector<Lane*> claimed;
    GatherLocked(batch, claimed);
    ++active_batches_;
    lock.unlock();

    fn_(std::move(batch));

    lock.lock();
    --active_batches_;
    for (Lane* lane : claimed) lane->in_flight = false;
    // The freed lanes may hold more ready chunks — hand them to whichever
    // dispatcher is idle (work stealing), and let Drain/Shutdown waiters
    // re-check their predicates.
    cv_.notify_all();
    if (pending_count_ == 0 && active_batches_ == 0) {
      drained_cv_.notify_all();
    }
  }
}

}  // namespace nec::runtime
