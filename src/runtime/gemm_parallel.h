// Bridges nec::nn's GEMM parallel-for hook onto nec::runtime::ThreadPool.
//
// The nn library cannot depend on nec::runtime (the dependency runs the
// other way), so it exposes a process-wide hook instead; this adapter
// installs a hook that fans row panels out over a borrowed pool and blocks
// until they finish.
//
// Usage contract:
//   * Install once at startup with a pool DEDICATED to GEMM panels (e.g.
//     necd or a bench creates a second pool). Sharing the SessionManager's
//     strand pool risks deadlock: a strand task occupying every worker
//     while the submitter waits on panel completion would starve the
//     panels behind it in the same queue.
//   * The pool should use OverflowPolicy::kBlock with capacity >= the
//     panel fan-out (16); kReject/kDropOldest would bounce panels, which
//     the adapter then runs inline (correct, but serial).
//   * Only threads inside a nn::GemmParallelScope fan out. Runtime worker
//     strands never enter a scope, so per-session inference stays serial
//     and bit-exact regardless of installation.
#pragma once

#include "nn/gemm.h"
#include "runtime/thread_pool.h"

namespace nec::runtime {

/// Installs a nn::SetGemmParallelFor hook backed by `pool`. The pool must
/// outlive every GEMM call made under an enabled GemmParallelScope; call
/// UninstallGemmParallelFor before destroying it.
void InstallGemmParallelFor(ThreadPool& pool);

/// Removes the hook (GEMM falls back to serial everywhere).
void UninstallGemmParallelFor();

}  // namespace nec::runtime
