// Runtime observability: atomic counters plus a latency histogram.
//
// Every per-chunk pass through the runtime records its selector+broadcast
// wall-clock into a log-spaced histogram with atomic buckets, so recording
// from many workers is wait-free and never perturbs the latencies being
// measured. Snapshot() folds everything into a plain struct the daemon and
// benches print; quantiles are read from the bucket CDF (resolution ~11%
// per bucket, plenty for a p99-vs-300 ms deadline check, §IV-C2).
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>

#include "runtime/fault.h"

namespace nec::runtime {

struct LatencyQuantiles {
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  double max_ms = 0.0;
  std::uint64_t count = 0;
};

/// Number of log-spaced buckets in every LatencyHistogram.
inline constexpr std::size_t kLatencyHistogramBuckets = 112;

/// Full bucket surface of a LatencyHistogram at one moment, in
/// Prometheus-friendly cumulative form: cumulative[i] observations were
/// <= BucketUpperMs(i). Exported verbatim by the /metrics endpoint so a
/// scraper can aggregate across processes and derive any quantile.
struct HistogramSnapshot {
  std::array<std::uint64_t, kLatencyHistogramBuckets> cumulative{};
  std::uint64_t count = 0;
  double sum_ms = 0.0;
  double max_ms = 0.0;
};

/// Fixed log-spaced histogram over (0, ~12 s]; thread-safe, wait-free
/// recording. Bucket i spans [kMinMs*G^i, kMinMs*G^(i+1)) with G = 1.11,
/// so a reported quantile is within one bucket ratio of the true value.
class LatencyHistogram {
 public:
  static constexpr std::size_t kBuckets = kLatencyHistogramBuckets;
  static constexpr double kMinMs = 0.1;
  static constexpr double kGrowth = 1.11;

  void Record(double ms);

  /// Quantiles over everything recorded so far. Concurrent Records may or
  /// may not be included (snapshot is not a barrier).
  LatencyQuantiles Quantiles() const;

  /// The full cumulative bucket surface (exported to /metrics). Same
  /// consistency as Quantiles(): concurrent Records may be torn across
  /// buckets, never corrupted.
  HistogramSnapshot Buckets() const;

  /// Inclusive upper bound of bucket `index` in ms (kMinMs * G^index).
  static double BucketUpperMs(std::size_t index);

  /// Fleet aggregation: bucket-wise sum of two snapshots of the SAME
  /// fixed grid (counts and sums add, maxima take the larger). Merge is
  /// associative and commutative — `Merge(a, b) == Merge(b, a)` and
  /// folding N shards in any order yields the same fleet CDF — which is
  /// what lets the router scrape members independently and add them up.
  static HistogramSnapshot Merge(const HistogramSnapshot& a,
                                 const HistogramSnapshot& b);

  void Reset();

 private:
  static std::size_t BucketIndex(double ms);

  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> max_us_{0};
  std::atomic<std::uint64_t> sum_us_{0};
};

// -------------------------------------------------- per-hop latency
// Where did an end-to-end millisecond go once the chunk crossed the
// wire? Each boundary on the client → router → shard → client path
// records its share into one histogram of a process-global family, so
// e2e p99 decomposes into visible hops and the dominant one is
// machine-identifiable from a single scrape (DESIGN.md §5g).

enum class Hop : std::uint8_t {
  kRouterQueue = 0,   ///< chunk frame decoded → queued on the upstream
  kUpstreamWrite,     ///< upstream buffer → bytes accepted by the shard
  kShardQueue,        ///< shard: samples ready → compute starts
  kShardCompute,      ///< shard: selector + broadcast wall time
  kReply,             ///< shard: output produced → reply frame encoded
};
inline constexpr std::size_t kNumHops = 5;

/// Prometheus label value for the hop ("router_queue", ...).
const char* HopName(Hop hop);

/// Process-global, always-on per-hop histograms. Recording is the same
/// wait-free atomic path as every LatencyHistogram — cheap enough to
/// stay unconditional, so the hop decomposition needs no opt-in flag.
class HopStats {
 public:
  static HopStats& Global();

  void Record(Hop hop, double ms) {
    hops_[static_cast<std::size_t>(hop)].Record(ms);
  }
  HistogramSnapshot Snapshot(Hop hop) const {
    return hops_[static_cast<std::size_t>(hop)].Buckets();
  }
  /// Tests own the process-global instance.
  void Reset() {
    for (auto& h : hops_) h.Reset();
  }

 private:
  HopStats() = default;
  std::array<LatencyHistogram, kNumHops> hops_;
};

/// Largest batch size tracked exactly by the batch-size histogram; larger
/// batches fold into the last bucket.
inline constexpr std::size_t kMaxTrackedBatch = 32;

/// One coherent view of the runtime, cheap enough to print every second.
struct RuntimeStatsSnapshot {
  std::uint64_t sessions = 0;          ///< sessions created
  std::uint64_t chunks_processed = 0;  ///< full chunks shadowed + modulated
  std::uint64_t dispatches = 0;        ///< strand tasks handed to the pool
  std::uint64_t dispatch_rejections = 0;  ///< pool bounced a strand (kReject)
  std::uint64_t dispatch_drops = 0;  ///< queued strands evicted (kDropOldest)
  std::uint64_t samples_submitted = 0;
  std::uint64_t samples_dropped = 0;  ///< buffered audio discarded on evict
  std::size_t queue_depth = 0;  ///< pool queue depth at snapshot time
  LatencyQuantiles chunk_latency;  ///< per-chunk selector+broadcast wall ms
  HistogramSnapshot chunk_latency_hist;  ///< full buckets behind ^
  /// End-to-end per-chunk latency: ready (inbox arrival / batcher
  /// enqueue) → completion, queue wait INCLUDED. This is the honest
  /// number to judge the 300 ms deadline against — `chunk_latency` above
  /// is processing time only and can report a healthy p99 while chunks
  /// rot in a queue for seconds.
  LatencyQuantiles e2e_latency;
  HistogramSnapshot e2e_latency_hist;  ///< full buckets behind ^

  // --- Micro-batching (zero everywhere when batching is off).
  std::uint64_t batches_dispatched = 0;  ///< InferBatch calls issued
  std::uint64_t batched_chunks = 0;      ///< chunks served via a batch
  std::uint64_t max_batch_size = 0;
  double avg_batch_size = 0.0;
  /// size_counts[s] = batches of size s (s > kMaxTrackedBatch folds into
  /// the last bucket; index 0 is unused).
  std::array<std::uint64_t, kMaxTrackedBatch + 1> batch_size_counts{};
  /// Coalescer queue wait per chunk: enqueue → batch dispatch.
  LatencyQuantiles queue_wait;
  HistogramSnapshot queue_wait_hist;  ///< full buckets behind ^

  // --- Fault tolerance (DESIGN.md §5f; zero everywhere on a clean run).
  std::uint64_t faults = 0;  ///< sessions transitioned to kFaulted
  /// Faults broken down by ErrorCategory (index = category value).
  std::array<std::uint64_t, kNumErrorCategories> faults_by_category{};
  std::uint64_t deadline_misses = 0;   ///< chunks over the deadline budget
  std::uint64_t degrade_steps_down = 0;  ///< ladder demotions
  std::uint64_t degrade_steps_up = 0;    ///< recovery-probe promotions
  std::uint64_t chunk_retries = 0;     ///< transient-failure chunk retries
  std::uint64_t batch_splits = 0;      ///< poisoned-batch bisections
  std::uint64_t samples_sanitized = 0;  ///< NaN/Inf/wild samples repaired
  std::uint64_t bad_input_rejections = 0;  ///< Submits bounced (kReject)
  std::uint64_t session_resets = 0;    ///< ResetSession() calls
  /// Tasks whose exception escaped to the pool worker (last-resort catch;
  /// always 0 when SessionManager's per-session containment is intact).
  std::uint64_t worker_exceptions = 0;
  std::size_t queue_peak_depth = 0;  ///< pool queue high-watermark
};

/// Pool-owned values sampled at snapshot time (the stats object does not
/// know the pool).
struct PoolSample {
  std::size_t queue_depth = 0;
  std::uint64_t dispatch_drops = 0;
  std::size_t queue_peak_depth = 0;
  std::uint64_t worker_exceptions = 0;
};

/// Shared mutable counters behind the snapshot; every field is atomic so
/// workers update them without coordination.
class RuntimeStats {
 public:
  void AddSession() { sessions_.fetch_add(1, kRelaxed); }
  void AddChunk(double latency_ms) {
    chunks_.fetch_add(1, kRelaxed);
    latency_.Record(latency_ms);
  }
  /// End-to-end (ready → complete) latency of one chunk; the companion
  /// AddChunk call owns the chunk count.
  void AddChunkE2E(double latency_ms) { e2e_latency_.Record(latency_ms); }
  void AddDispatch() { dispatches_.fetch_add(1, kRelaxed); }
  void AddDispatchRejection() { rejections_.fetch_add(1, kRelaxed); }
  void AddSamples(std::uint64_t n) { samples_.fetch_add(n, kRelaxed); }
  void AddSamplesDropped(std::uint64_t n) {
    samples_dropped_.fetch_add(n, kRelaxed);
  }

  /// One coalesced InferBatch dispatch of `batch_size` chunks.
  void AddBatch(std::size_t batch_size);

  /// Time one chunk sat in the coalescer before its batch dispatched.
  void AddQueueWait(double ms) { queue_wait_.Record(ms); }

  // --- Fault tolerance.
  void AddFault(ErrorCategory category) {
    faults_[static_cast<std::size_t>(category)].fetch_add(1, kRelaxed);
  }
  void AddDeadlineMiss() { deadline_misses_.fetch_add(1, kRelaxed); }
  void AddDegradeDown() { degrade_down_.fetch_add(1, kRelaxed); }
  void AddDegradeUp() { degrade_up_.fetch_add(1, kRelaxed); }
  void AddRetry() { retries_.fetch_add(1, kRelaxed); }
  void AddBatchSplit() { batch_splits_.fetch_add(1, kRelaxed); }
  void AddSanitized(std::uint64_t n) {
    if (n > 0) sanitized_.fetch_add(n, kRelaxed);
  }
  void AddBadInputRejection() { bad_input_.fetch_add(1, kRelaxed); }
  void AddSessionReset() { resets_.fetch_add(1, kRelaxed); }

  /// Pool-owned counters are sampled by the caller into `pool`.
  RuntimeStatsSnapshot Snapshot(const PoolSample& pool) const;
  RuntimeStatsSnapshot Snapshot() const { return Snapshot(PoolSample{}); }

 private:
  static constexpr auto kRelaxed = std::memory_order_relaxed;

  std::atomic<std::uint64_t> sessions_{0};
  std::atomic<std::uint64_t> chunks_{0};
  std::atomic<std::uint64_t> dispatches_{0};
  std::atomic<std::uint64_t> rejections_{0};
  std::atomic<std::uint64_t> samples_{0};
  std::atomic<std::uint64_t> samples_dropped_{0};
  LatencyHistogram latency_;
  LatencyHistogram e2e_latency_;

  std::atomic<std::uint64_t> batches_{0};
  std::atomic<std::uint64_t> batched_chunks_{0};
  std::atomic<std::uint64_t> max_batch_{0};
  std::array<std::atomic<std::uint64_t>, kMaxTrackedBatch + 1>
      batch_size_counts_{};
  LatencyHistogram queue_wait_;

  std::array<std::atomic<std::uint64_t>, kNumErrorCategories> faults_{};
  std::atomic<std::uint64_t> deadline_misses_{0};
  std::atomic<std::uint64_t> degrade_down_{0};
  std::atomic<std::uint64_t> degrade_up_{0};
  std::atomic<std::uint64_t> retries_{0};
  std::atomic<std::uint64_t> batch_splits_{0};
  std::atomic<std::uint64_t> sanitized_{0};
  std::atomic<std::uint64_t> bad_input_{0};
  std::atomic<std::uint64_t> resets_{0};
};

}  // namespace nec::runtime
