#include "runtime/stats_export.h"

#include <cmath>
#include <cstdio>
#include <utility>

namespace nec::runtime {
namespace {

obs::HistogramData ToHistogramData(const HistogramSnapshot& snap) {
  obs::HistogramData h;
  h.count = snap.count;
  h.sum = snap.sum_ms / 1000.0;  // Prometheus convention: seconds
  // Compress the 112-bucket surface: emit a bucket boundary only when the
  // cumulative count changes (plus the first), so a typical scrape carries
  // a dozen lines instead of 112 while preserving the exact CDF.
  std::uint64_t prev = ~std::uint64_t{0};
  for (std::size_t i = 0; i < snap.cumulative.size(); ++i) {
    if (snap.cumulative[i] == prev &&
        i + 1 != snap.cumulative.size()) {
      continue;
    }
    prev = snap.cumulative[i];
    h.upper_bounds.push_back(LatencyHistogram::BucketUpperMs(i) / 1000.0);
    h.cumulative.push_back(snap.cumulative[i]);
  }
  return h;
}

obs::MetricFamily MakeHistogram(std::string name, std::string help,
                                const HistogramSnapshot& snap) {
  obs::MetricFamily f;
  f.name = std::move(name);
  f.help = std::move(help);
  f.type = obs::MetricType::kHistogram;
  obs::Metric m;
  m.histogram = ToHistogramData(snap);
  f.metrics.push_back(std::move(m));
  return f;
}

/// True when `bound_s` (seconds) is the canonical grid bound at `index`,
/// within the round-trip error of rendering a double with %.9g and
/// parsing it back.
bool OnGridAt(double bound_s, std::size_t index) {
  const double canon = LatencyHistogram::BucketUpperMs(index) / 1000.0;
  return std::abs(bound_s - canon) <= 1e-12 + 1e-6 * canon;
}

/// Reconstitutes a change-compressed surface onto the full canonical
/// grid. The CDF is flat between emitted bounds, so carrying the last
/// emitted cumulative forward is exact, not an approximation. False when
/// any source bound is off-grid.
bool ToCanonicalGrid(
    const obs::HistogramData& h,
    std::array<std::uint64_t, kLatencyHistogramBuckets>* cumulative,
    std::string* error) {
  cumulative->fill(0);
  std::size_t src = 0;             // next unconsumed source bound
  std::uint64_t carry = 0;         // CDF value below the next source bound
  for (std::size_t g = 0; g < kLatencyHistogramBuckets; ++g) {
    if (src < h.upper_bounds.size() && OnGridAt(h.upper_bounds[src], g)) {
      if (h.cumulative[src] < carry) {
        if (error != nullptr) *error = "bucket counts are not cumulative";
        return false;
      }
      carry = h.cumulative[src];
      ++src;
    }
    (*cumulative)[g] = carry;
  }
  if (src != h.upper_bounds.size()) {
    if (error != nullptr) {
      char buf[96];
      std::snprintf(buf, sizeof buf,
                    "bucket bound %.9g s is not on the canonical grid",
                    h.upper_bounds[src]);
      *error = buf;
    }
    return false;
  }
  return true;
}

}  // namespace

obs::MetricFamily HopLatencyFamily() {
  obs::MetricFamily family;
  family.name = "nec_hop_latency_seconds";
  family.help =
      "Per-hop latency decomposition of the client-router-shard path";
  family.type = obs::MetricType::kHistogram;
  for (std::size_t i = 0; i < kNumHops; ++i) {
    const Hop hop = static_cast<Hop>(i);
    const HistogramSnapshot snap = HopStats::Global().Snapshot(hop);
    if (snap.count == 0) continue;
    obs::Metric m;
    m.labels.emplace_back("hop", HopName(hop));
    m.histogram = ToHistogramData(snap);
    family.metrics.push_back(std::move(m));
  }
  return family;
}

HistogramMergeStatus MergeHistogramData(const obs::HistogramData& src,
                                        obs::HistogramData* acc,
                                        std::string* error) {
  std::array<std::uint64_t, kLatencyHistogramBuckets> src_grid{};
  if (!ToCanonicalGrid(src, &src_grid, error)) {
    return HistogramMergeStatus::kBoundaryMismatch;
  }
  std::array<std::uint64_t, kLatencyHistogramBuckets> acc_grid{};
  if (!ToCanonicalGrid(*acc, &acc_grid, error)) {
    return HistogramMergeStatus::kBoundaryMismatch;
  }
  // The merged accumulator carries the FULL grid: later sources always
  // reconstitute against it exactly, and any quantile derives from the
  // complete fleet CDF.
  acc->upper_bounds.resize(kLatencyHistogramBuckets);
  acc->cumulative.resize(kLatencyHistogramBuckets);
  for (std::size_t g = 0; g < kLatencyHistogramBuckets; ++g) {
    acc->upper_bounds[g] = LatencyHistogram::BucketUpperMs(g) / 1000.0;
    acc->cumulative[g] = acc_grid[g] + src_grid[g];
  }
  acc->count += src.count;
  acc->sum += src.sum;
  return HistogramMergeStatus::kOk;
}

std::vector<obs::MetricFamily> SnapshotToMetricFamilies(
    const RuntimeStatsSnapshot& s) {
  using obs::MakeCounter;
  using obs::MakeGauge;
  std::vector<obs::MetricFamily> out;
  out.reserve(24);

  out.push_back(MakeCounter("nec_sessions_total",
                            "Protection sessions created",
                            static_cast<double>(s.sessions)));
  out.push_back(MakeCounter("nec_chunks_processed_total",
                            "Chunks shadowed and modulated",
                            static_cast<double>(s.chunks_processed)));
  out.push_back(MakeCounter("nec_dispatches_total",
                            "Strand tasks handed to the pool",
                            static_cast<double>(s.dispatches)));
  out.push_back(MakeCounter("nec_dispatch_rejections_total",
                            "Strand dispatches bounced by backpressure",
                            static_cast<double>(s.dispatch_rejections)));
  out.push_back(MakeCounter("nec_dispatch_drops_total",
                            "Queued strands evicted under drop-oldest",
                            static_cast<double>(s.dispatch_drops)));
  out.push_back(MakeCounter("nec_samples_submitted_total",
                            "Monitored audio samples accepted",
                            static_cast<double>(s.samples_submitted)));
  out.push_back(MakeCounter("nec_samples_dropped_total",
                            "Buffered samples discarded on eviction",
                            static_cast<double>(s.samples_dropped)));
  out.push_back(MakeGauge("nec_queue_depth",
                          "Pool queue depth at scrape time",
                          static_cast<double>(s.queue_depth)));
  out.push_back(MakeGauge("nec_queue_peak_depth",
                          "Pool queue high-watermark",
                          static_cast<double>(s.queue_peak_depth)));

  out.push_back(MakeHistogram(
      "nec_chunk_latency_seconds",
      "Per-chunk selector+broadcast wall time",
      s.chunk_latency_hist));
  out.push_back(MakeHistogram(
      "nec_chunk_e2e_latency_seconds",
      "Per-chunk end-to-end latency: ready to completed, queue wait "
      "included — judge the deadline against this",
      s.e2e_latency_hist));

  // --- Continuous batching.
  out.push_back(MakeCounter("nec_batches_dispatched_total",
                            "Batched InferBatch calls issued",
                            static_cast<double>(s.batches_dispatched)));
  out.push_back(MakeCounter("nec_batched_chunks_total",
                            "Chunks served via a batched forward",
                            static_cast<double>(s.batched_chunks)));
  out.push_back(MakeGauge("nec_max_batch_size",
                          "Largest batch dispatched so far",
                          static_cast<double>(s.max_batch_size)));
  out.push_back(MakeGauge("nec_avg_batch_size",
                          "Mean chunks per dispatched batch",
                          s.avg_batch_size));
  out.push_back(MakeHistogram("nec_queue_wait_seconds",
                              "Batcher wait: enqueue to batch dispatch",
                              s.queue_wait_hist));

  // --- Fault tolerance. One family, one sample per category label.
  {
    obs::MetricFamily faults;
    faults.name = "nec_faults_total";
    faults.help = "Session faults by error category";
    faults.type = obs::MetricType::kCounter;
    for (std::size_t i = 0; i < kNumErrorCategories; ++i) {
      obs::Metric m;
      m.labels.emplace_back(
          "category", ErrorCategoryName(static_cast<ErrorCategory>(i)));
      m.value = static_cast<double>(s.faults_by_category[i]);
      faults.metrics.push_back(std::move(m));
    }
    out.push_back(std::move(faults));
  }
  out.push_back(MakeCounter("nec_deadline_misses_total",
                            "Chunks over the deadline budget",
                            static_cast<double>(s.deadline_misses)));
  out.push_back(MakeCounter("nec_degrade_steps_down_total",
                            "Degradation-ladder demotions",
                            static_cast<double>(s.degrade_steps_down)));
  out.push_back(MakeCounter("nec_degrade_steps_up_total",
                            "Recovery-probe promotions",
                            static_cast<double>(s.degrade_steps_up)));
  out.push_back(MakeCounter("nec_chunk_retries_total",
                            "Transient-failure chunk retries",
                            static_cast<double>(s.chunk_retries)));
  out.push_back(MakeCounter("nec_batch_splits_total",
                            "Poisoned-batch bisections",
                            static_cast<double>(s.batch_splits)));
  out.push_back(MakeCounter("nec_samples_sanitized_total",
                            "NaN/Inf/wild samples repaired at Submit",
                            static_cast<double>(s.samples_sanitized)));
  out.push_back(MakeCounter("nec_bad_input_rejections_total",
                            "Submits bounced for corrupt audio",
                            static_cast<double>(s.bad_input_rejections)));
  out.push_back(MakeCounter("nec_session_resets_total",
                            "ResetSession calls",
                            static_cast<double>(s.session_resets)));
  out.push_back(MakeCounter("nec_worker_exceptions_total",
                            "Exceptions that escaped to a pool worker",
                            static_cast<double>(s.worker_exceptions)));
  return out;
}

std::string SessionStatusJson(std::size_t id, const SessionStatus& status) {
  std::string out = "{\"id\":" + std::to_string(id);
  out += ",\"state\":\"";
  out += SessionStateName(status.state);
  out += "\",\"level\":\"";
  out += DegradeLevelName(status.level);
  out += "\",\"chunks\":" + std::to_string(status.chunks_emitted);
  out += ",\"faults\":" + std::to_string(status.faults);
  out += ",\"deadline_misses\":" + std::to_string(status.deadline_misses);
  if (status.error.has_value()) {
    out += ",\"error\":{\"category\":\"";
    out += ErrorCategoryName(status.error->category);
    out += "\",\"message\":\"";
    out += obs::JsonEscape(status.error->message);
    out += "\"}";
  }
  out += "}";
  return out;
}

std::string SessionsJson(const SessionManager& manager) {
  std::string out = "{\"sessions\":[";
  const std::size_t n = manager.num_sessions();
  for (std::size_t id = 0; id < n; ++id) {
    if (id > 0) out += ',';
    out += SessionStatusJson(id, manager.SessionStatus(id));
  }
  out += "]}";
  return out;
}

}  // namespace nec::runtime
