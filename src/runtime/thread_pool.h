// Fixed-size worker pool over the bounded WorkQueue.
//
// nec::runtime dispatches per-chunk shadow generation onto this pool; each
// worker is a std::jthread looping over WorkQueue::Pop. Shutdown is
// *graceful*: the queue closes (no new work admitted) but every task that
// was already admitted runs to completion before the workers join — an
// in-flight protection chunk is never abandoned half-modulated.
//
// Fault isolation: a task whose exception escapes would otherwise
// std::terminate the process (the exception unwinds a jthread). Workers
// therefore catch at the task boundary as a LAST RESORT — the exception is
// counted (task_exceptions()) and the worker keeps serving other sessions.
// This is a backstop, not the containment layer: SessionManager catches at
// the session boundary first and records a typed SessionError; anything
// reaching the worker catch is a containment bug worth alerting on.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#include "runtime/work_queue.h"

namespace nec::runtime {

class ThreadPool {
 public:
  struct Options {
    std::size_t workers = 4;
    std::size_t queue_capacity = 256;
    OverflowPolicy policy = OverflowPolicy::kBlock;
  };

  // No `= {}` default: GCC rejects a braced default argument of a nested
  // aggregate with member initializers (bug 88165).
  explicit ThreadPool(Options options);

  /// Joins after draining (see Shutdown).
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task; returns false if the pool is shut down or the queue
  /// bounced it (kReject). Under kDropOldest a full queue evicts its
  /// oldest queued task to admit this one; the victim's `on_drop` (if any)
  /// runs synchronously on the submitting thread before Submit returns, so
  /// the victim's owner can unwind state that assumed the task would run.
  /// A task's `run` and `on_drop` are mutually exclusive: exactly one of
  /// them fires for every admitted task (drained tasks still run after
  /// Shutdown — see below).
  ///
  /// Thread-safety: safe from any thread under kReject/kDropOldest. Under
  /// kBlock a *worker* submitting to a full queue parks inside Push while
  /// also being a consumer — if every worker does this the pool deadlocks —
  /// so worker-thread Submit with kBlock is only safe when the queue is
  /// guaranteed non-full.
  bool Submit(std::function<void()> task,
              std::function<void()> on_drop = nullptr);

  /// Closes the queue, lets the workers drain every admitted task, and
  /// joins them. Idempotent; implicitly called by the destructor.
  void Shutdown();

  std::size_t workers() const { return threads_.size(); }
  std::size_t queue_depth() const { return queue_.size(); }
  std::size_t queue_peak_depth() const { return queue_.peak_depth(); }
  std::uint64_t submitted() const { return queue_.pushed(); }
  std::uint64_t rejected() const { return queue_.rejected(); }
  std::uint64_t dropped() const { return queue_.dropped(); }
  std::uint64_t executed() const {
    return executed_.load(std::memory_order_relaxed);
  }
  /// Tasks whose exception escaped into the worker loop (see header).
  std::uint64_t task_exceptions() const {
    return task_exceptions_.load(std::memory_order_relaxed);
  }

 private:
  struct Task {
    std::function<void()> run;
    std::function<void()> on_drop;  ///< fired instead of run on eviction
  };

  void WorkerLoop();

  WorkQueue<Task> queue_;
  std::atomic<std::uint64_t> executed_{0};
  std::atomic<std::uint64_t> task_exceptions_{0};
  std::vector<std::jthread> threads_;
};

}  // namespace nec::runtime
