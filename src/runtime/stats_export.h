// RuntimeStatsSnapshot → nec::obs metric families.
//
// Lives in nec_runtime (not nec_obs) on purpose: obs sits below the
// pipeline libraries so they can emit trace spans, which means obs cannot
// know runtime types. The conversion — naming every counter, labelling
// fault categories, unrolling the latency histograms into Prometheus
// bucket surfaces — happens here, where both sides are visible.
#pragma once

#include <string>
#include <vector>

#include "obs/metrics.h"
#include "runtime/session_manager.h"
#include "runtime/stats.h"

namespace nec::runtime {

/// Converts one snapshot into Prometheus-shaped families (all prefixed
/// `nec_`). Counters carry lifetime totals; histograms carry the full
/// cumulative bucket surface of the underlying LatencyHistogram.
std::vector<obs::MetricFamily> SnapshotToMetricFamilies(
    const RuntimeStatsSnapshot& snapshot);

/// The process-global per-hop latency decomposition as ONE histogram
/// family `nec_hop_latency_seconds` with a `hop` label per recorded
/// boundary (DESIGN.md §5g). Hops with zero observations are omitted —
/// a shard never emits router hops and vice versa.
obs::MetricFamily HopLatencyFamily();

/// Outcome of folding one scraped histogram surface into a fleet
/// accumulator.
enum class HistogramMergeStatus {
  kOk = 0,
  /// A bucket bound of the source does not lie on the canonical
  /// LatencyHistogram grid — the surfaces describe different bucket
  /// layouts and adding their counts would fabricate a CDF.
  kBoundaryMismatch,
};

/// Adds a scraped histogram surface `src` (bounds in seconds, as parsed
/// from a member's /metrics) into `*acc`. Both are reconstituted onto
/// the canonical 112-bucket LatencyHistogram grid first: the renderer
/// change-compresses each scrape (emitting only bounds where the CDF
/// moves), so two shards legitimately expose different bound subsets of
/// the same grid, and the flat-between-emitted-bounds CDF makes the
/// reconstruction exact. A bound off the grid returns
/// kBoundaryMismatch with a message in *error and leaves *acc usable
/// (the offending source is simply not folded in). An empty `*acc`
/// (default HistogramData) is a valid identity accumulator.
HistogramMergeStatus MergeHistogramData(const obs::HistogramData& src,
                                        obs::HistogramData* acc,
                                        std::string* error);

/// One session's status as a JSON object (used by necd's /sessions
/// endpoint): {"id":..,"state":..,"level":..,"chunks":..,"faults":..,
/// "deadline_misses":..,"error":..}.
std::string SessionStatusJson(std::size_t id, const SessionStatus& status);

/// Every session of `manager` as a JSON array of SessionStatusJson
/// objects. Thread-safe (SessionStatus is).
std::string SessionsJson(const SessionManager& manager);

}  // namespace nec::runtime
