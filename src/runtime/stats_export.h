// RuntimeStatsSnapshot → nec::obs metric families.
//
// Lives in nec_runtime (not nec_obs) on purpose: obs sits below the
// pipeline libraries so they can emit trace spans, which means obs cannot
// know runtime types. The conversion — naming every counter, labelling
// fault categories, unrolling the latency histograms into Prometheus
// bucket surfaces — happens here, where both sides are visible.
#pragma once

#include <string>
#include <vector>

#include "obs/metrics.h"
#include "runtime/session_manager.h"
#include "runtime/stats.h"

namespace nec::runtime {

/// Converts one snapshot into Prometheus-shaped families (all prefixed
/// `nec_`). Counters carry lifetime totals; histograms carry the full
/// cumulative bucket surface of the underlying LatencyHistogram.
std::vector<obs::MetricFamily> SnapshotToMetricFamilies(
    const RuntimeStatsSnapshot& snapshot);

/// One session's status as a JSON object (used by necd's /sessions
/// endpoint): {"id":..,"state":..,"level":..,"chunks":..,"faults":..,
/// "deadline_misses":..,"error":..}.
std::string SessionStatusJson(std::size_t id, const SessionStatus& status);

/// Every session of `manager` as a JSON array of SessionStatusJson
/// objects. Thread-safe (SessionStatus is).
std::string SessionsJson(const SessionManager& manager);

}  // namespace nec::runtime
