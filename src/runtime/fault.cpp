#include "runtime/fault.h"

#include <chrono>
#include <cmath>
#include <thread>

namespace nec::runtime {

const char* ErrorCategoryName(ErrorCategory category) {
  switch (category) {
    case ErrorCategory::kBadInput: return "bad-input";
    case ErrorCategory::kInvariant: return "invariant";
    case ErrorCategory::kDeadlineMiss: return "deadline-miss";
    case ErrorCategory::kOverload: return "overload";
    case ErrorCategory::kAuthRejected: return "auth-rejected";
  }
  return "?";
}

const char* SessionStateName(SessionState state) {
  switch (state) {
    case SessionState::kIdle: return "idle";
    case SessionState::kRunning: return "running";
    case SessionState::kFaulted: return "faulted";
  }
  return "?";
}

const char* DegradeLevelName(DegradeLevel level) {
  switch (level) {
    case DegradeLevel::kNeural: return "neural";
    case DegradeLevel::kLasFallback: return "las-fallback";
    case DegradeLevel::kSilence: return "silence";
  }
  return "?";
}

SampleScan ScanSamples(std::span<const float> samples) {
  SampleScan scan;
  for (const float s : samples) {
    if (!std::isfinite(s)) {
      ++scan.nonfinite;
    } else if (std::fabs(s) > kWildSampleLimit) {
      ++scan.wild;
    }
  }
  return scan;
}

SampleScan SanitizeSamples(std::span<float> samples) {
  SampleScan scan;
  for (float& s : samples) {
    if (!std::isfinite(s)) {
      s = 0.0f;
      ++scan.nonfinite;
    } else if (std::fabs(s) > kWildSampleLimit) {
      s = s > 0.0f ? 1.0f : -1.0f;
      ++scan.wild;
    }
  }
  return scan;
}

FaultInjector& FaultInjector::Global() {
  static FaultInjector* injector = new FaultInjector();  // never destroyed
  return *injector;
}

void FaultInjector::Arm(const std::string& site, Spec spec,
                        std::uint64_t seed) {
  std::lock_guard lock(mu_);
  SiteState& state = sites_[site];
  state = SiteState{.spec = spec, .rng = Rng(seed)};
  armed_sites_.store(sites_.size(), std::memory_order_relaxed);
}

void FaultInjector::Disarm(const std::string& site) {
  std::lock_guard lock(mu_);
  sites_.erase(site);
  armed_sites_.store(sites_.size(), std::memory_order_relaxed);
}

void FaultInjector::DisarmAll() {
  std::lock_guard lock(mu_);
  sites_.clear();
  armed_sites_.store(0, std::memory_order_relaxed);
}

bool FaultInjector::ShouldFire(SiteState& state, std::uint64_t key) {
  const Spec& spec = state.spec;
  if (spec.key != kAnyKey && spec.key != key) return false;
  const std::uint64_t hit = state.matched++;
  if (hit < spec.skip_first) return false;
  if (state.injected >= spec.limit) return false;
  if (spec.probability < 1.0 && !state.rng.Chance(spec.probability)) {
    return false;
  }
  ++state.injected;
  return true;
}

void FaultInjector::OnSiteSlow(const char* site, std::uint64_t key) {
  // Decide under the lock, act (throw / sleep) after releasing it.
  ErrorCategory category = ErrorCategory::kInvariant;
  double latency_ms = 0.0;
  bool fire_throw = false;
  {
    std::lock_guard lock(mu_);
    auto it = sites_.find(site);
    if (it == sites_.end()) return;
    SiteState& state = it->second;
    if (state.spec.kind == Kind::kSaturate) return;  // SaturateAt's job
    if (!ShouldFire(state, key)) return;
    if (state.spec.kind == Kind::kThrow) {
      fire_throw = true;
      category = state.spec.category;
    } else {
      latency_ms = state.spec.latency_ms;
    }
  }
  if (fire_throw) {
    throw InjectedFault(category, std::string("injected fault at site '") +
                                      site + "'");
  }
  if (latency_ms > 0.0) {
    std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
        latency_ms));
  }
}

bool FaultInjector::SaturateAt(const char* site, std::uint64_t key) {
  if (!armed()) return false;
  std::lock_guard lock(mu_);
  auto it = sites_.find(site);
  if (it == sites_.end() || it->second.spec.kind != Kind::kSaturate) {
    return false;
  }
  return ShouldFire(it->second, key);
}

std::uint64_t FaultInjector::injections(const std::string& site) const {
  std::lock_guard lock(mu_);
  auto it = sites_.find(site);
  return it == sites_.end() ? 0 : it->second.injected;
}

}  // namespace nec::runtime
