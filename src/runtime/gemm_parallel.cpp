#include "runtime/gemm_parallel.h"

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>

namespace nec::runtime {
namespace {

/// Completion latch for one fan-out. A condition variable (not a spin)
/// because panel bodies can be long for large GEMMs.
struct PanelLatch {
  explicit PanelLatch(std::size_t count) : remaining(count) {}

  void Done() {
    std::lock_guard lock(mu);
    if (--remaining == 0) cv.notify_one();
  }
  void Wait() {
    std::unique_lock lock(mu);
    cv.wait(lock, [this] { return remaining == 0; });
  }

  std::mutex mu;
  std::condition_variable cv;
  std::size_t remaining;
};

}  // namespace

void InstallGemmParallelFor(ThreadPool& pool) {
  nn::SetGemmParallelFor(
      [&pool](std::size_t num_tasks,
              const std::function<void(std::size_t)>& body) {
        if (num_tasks == 0) return;
        // The last panel runs on the calling thread: it guarantees forward
        // progress even if the pool is saturated, and saves one dispatch.
        PanelLatch latch(num_tasks - 1);
        for (std::size_t p = 0; p + 1 < num_tasks; ++p) {
          // on_drop covers kDropOldest eviction: the panel then runs on
          // the evicting producer's thread (references stay valid until
          // latch.Wait() returns). Exactly one of run/on_drop fires per
          // admitted task, so the latch always completes.
          const auto run = [&body, &latch, p] {
            body(p);
            latch.Done();
          };
          if (!pool.Submit(run, /*on_drop=*/run)) {
            // Bounced (kReject or shutdown): run the panel inline. Still
            // correct — just serial for this panel.
            run();
          }
        }
        body(num_tasks - 1);
        latch.Wait();
      });
}

void UninstallGemmParallelFor() { nn::SetGemmParallelFor(nullptr); }

}  // namespace nec::runtime
