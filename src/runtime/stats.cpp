#include "runtime/stats.h"

#include <algorithm>
#include <cmath>

namespace nec::runtime {

std::size_t LatencyHistogram::BucketIndex(double ms) {
  if (!(ms > kMinMs)) return 0;
  const double idx = std::log(ms / kMinMs) / std::log(kGrowth);
  return std::min(kBuckets - 1,
                  static_cast<std::size_t>(std::floor(idx)) + 1);
}

double LatencyHistogram::BucketUpperMs(std::size_t index) {
  return kMinMs * std::pow(kGrowth, static_cast<double>(index));
}

void LatencyHistogram::Record(double ms) {
  buckets_[BucketIndex(ms)].fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t us =
      static_cast<std::uint64_t>(std::max(0.0, ms) * 1000.0);
  sum_us_.fetch_add(us, std::memory_order_relaxed);
  std::uint64_t seen = max_us_.load(std::memory_order_relaxed);
  while (us > seen &&
         !max_us_.compare_exchange_weak(seen, us,
                                        std::memory_order_relaxed)) {
  }
}

LatencyQuantiles LatencyHistogram::Quantiles() const {
  std::array<std::uint64_t, kBuckets> counts;
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
    total += counts[i];
  }
  LatencyQuantiles q;
  q.count = total;
  q.max_ms =
      static_cast<double>(max_us_.load(std::memory_order_relaxed)) / 1000.0;
  if (total == 0) return q;

  const auto quantile = [&](double p) {
    const std::uint64_t rank = static_cast<std::uint64_t>(
        std::ceil(p * static_cast<double>(total)));
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i < kBuckets; ++i) {
      cum += counts[i];
      if (cum >= rank) return BucketUpperMs(i);
    }
    return BucketUpperMs(kBuckets - 1);
  };
  q.p50_ms = quantile(0.50);
  q.p95_ms = quantile(0.95);
  q.p99_ms = quantile(0.99);
  // The histogram's bucket ceiling can overshoot the true maximum; clamp
  // the tail quantiles so p99 <= max always holds in reports.
  q.p50_ms = std::min(q.p50_ms, q.max_ms);
  q.p95_ms = std::min(q.p95_ms, q.max_ms);
  q.p99_ms = std::min(q.p99_ms, q.max_ms);
  return q;
}

HistogramSnapshot LatencyHistogram::Buckets() const {
  HistogramSnapshot snap;
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    cum += buckets_[i].load(std::memory_order_relaxed);
    snap.cumulative[i] = cum;
  }
  snap.count = cum;
  snap.sum_ms =
      static_cast<double>(sum_us_.load(std::memory_order_relaxed)) / 1000.0;
  snap.max_ms =
      static_cast<double>(max_us_.load(std::memory_order_relaxed)) / 1000.0;
  return snap;
}

HistogramSnapshot LatencyHistogram::Merge(const HistogramSnapshot& a,
                                          const HistogramSnapshot& b) {
  HistogramSnapshot out;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    out.cumulative[i] = a.cumulative[i] + b.cumulative[i];
  }
  out.count = a.count + b.count;
  out.sum_ms = a.sum_ms + b.sum_ms;
  out.max_ms = std::max(a.max_ms, b.max_ms);
  return out;
}

const char* HopName(Hop hop) {
  switch (hop) {
    case Hop::kRouterQueue: return "router_queue";
    case Hop::kUpstreamWrite: return "upstream_write";
    case Hop::kShardQueue: return "shard_queue";
    case Hop::kShardCompute: return "shard_compute";
    case Hop::kReply: return "reply";
  }
  return "?";
}

HopStats& HopStats::Global() {
  static HopStats* stats = new HopStats;
  return *stats;
}

void LatencyHistogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  max_us_.store(0, std::memory_order_relaxed);
  sum_us_.store(0, std::memory_order_relaxed);
}

void RuntimeStats::AddBatch(std::size_t batch_size) {
  batches_.fetch_add(1, kRelaxed);
  batched_chunks_.fetch_add(batch_size, kRelaxed);
  batch_size_counts_[std::min(batch_size, kMaxTrackedBatch)].fetch_add(
      1, kRelaxed);
  std::uint64_t seen = max_batch_.load(kRelaxed);
  while (batch_size > seen &&
         !max_batch_.compare_exchange_weak(seen, batch_size, kRelaxed)) {
  }
}

RuntimeStatsSnapshot RuntimeStats::Snapshot(const PoolSample& pool) const {
  RuntimeStatsSnapshot s;
  s.sessions = sessions_.load(kRelaxed);
  s.chunks_processed = chunks_.load(kRelaxed);
  s.dispatches = dispatches_.load(kRelaxed);
  s.dispatch_rejections = rejections_.load(kRelaxed);
  s.dispatch_drops = pool.dispatch_drops;
  s.samples_submitted = samples_.load(kRelaxed);
  s.samples_dropped = samples_dropped_.load(kRelaxed);
  s.queue_depth = pool.queue_depth;
  s.queue_peak_depth = pool.queue_peak_depth;
  s.worker_exceptions = pool.worker_exceptions;
  s.chunk_latency = latency_.Quantiles();
  s.chunk_latency_hist = latency_.Buckets();
  s.e2e_latency = e2e_latency_.Quantiles();
  s.e2e_latency_hist = e2e_latency_.Buckets();

  for (std::size_t i = 0; i < kNumErrorCategories; ++i) {
    s.faults_by_category[i] = faults_[i].load(kRelaxed);
    s.faults += s.faults_by_category[i];
  }
  s.deadline_misses = deadline_misses_.load(kRelaxed);
  s.degrade_steps_down = degrade_down_.load(kRelaxed);
  s.degrade_steps_up = degrade_up_.load(kRelaxed);
  s.chunk_retries = retries_.load(kRelaxed);
  s.batch_splits = batch_splits_.load(kRelaxed);
  s.samples_sanitized = sanitized_.load(kRelaxed);
  s.bad_input_rejections = bad_input_.load(kRelaxed);
  s.session_resets = resets_.load(kRelaxed);

  s.batches_dispatched = batches_.load(kRelaxed);
  s.batched_chunks = batched_chunks_.load(kRelaxed);
  s.max_batch_size = max_batch_.load(kRelaxed);
  s.avg_batch_size =
      s.batches_dispatched
          ? static_cast<double>(s.batched_chunks) /
                static_cast<double>(s.batches_dispatched)
          : 0.0;
  for (std::size_t i = 0; i <= kMaxTrackedBatch; ++i) {
    s.batch_size_counts[i] = batch_size_counts_[i].load(kRelaxed);
  }
  s.queue_wait = queue_wait_.Quantiles();
  s.queue_wait_hist = queue_wait_.Buckets();
  return s;
}

}  // namespace nec::runtime
