// Bounded MPMC work queue with configurable backpressure.
//
// The runtime's ingestion problem: N live sessions produce chunk jobs at
// audio rate while a fixed worker pool drains them. When producers outrun
// the pool the queue must do *something* principled — the three classic
// policies are all useful here:
//
//   * kBlock      — producer waits for space. Lossless; couples the
//                   producer's pace to the pool (the default for necd,
//                   where dropping protection chunks means leaking the
//                   target's voice).
//   * kReject     — Push returns false immediately. The caller keeps the
//                   samples buffered and retries later (load shedding with
//                   client-side queueing).
//   * kDropOldest — evict the front to admit the newest. For monitoring
//                   feeds where stale chunks are worthless once their
//                   300 ms overshadowing deadline (§IV-C2) has passed.
//
// All counters are plain integers guarded by the queue mutex; the queue is
// safe for any number of producer and consumer threads.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

#include "common/check.h"

namespace nec::runtime {

/// What Push does when the queue is at capacity.
enum class OverflowPolicy { kBlock, kReject, kDropOldest };

template <typename T>
class WorkQueue {
 public:
  explicit WorkQueue(std::size_t capacity,
                     OverflowPolicy policy = OverflowPolicy::kBlock)
      : capacity_(capacity), policy_(policy) {
    NEC_CHECK_MSG(capacity_ >= 1, "WorkQueue capacity must be >= 1");
  }

  WorkQueue(const WorkQueue&) = delete;
  WorkQueue& operator=(const WorkQueue&) = delete;

  /// Enqueues an item subject to the overflow policy. Returns false if the
  /// item was not admitted (queue closed, kReject overflow, or kBlock
  /// interrupted by Close).
  ///
  /// Under kDropOldest an admission at capacity evicts the front item; if
  /// `evicted` is non-null the victim is moved into it so the caller can
  /// unwind whatever state the victim represents (a dropped task is not
  /// the same as a finished one — see ThreadPool's drop callback).
  /// Otherwise the victim is destroyed.
  bool Push(T item, std::optional<T>* evicted = nullptr) {
    std::unique_lock lock(mu_);
    if (closed_) return false;
    if (items_.size() >= capacity_) {
      switch (policy_) {
        case OverflowPolicy::kBlock:
          not_full_.wait(lock, [&] {
            return items_.size() < capacity_ || closed_;
          });
          if (closed_) return false;
          break;
        case OverflowPolicy::kReject:
          ++rejected_;
          return false;
        case OverflowPolicy::kDropOldest:
          if (evicted != nullptr) *evicted = std::move(items_.front());
          items_.pop_front();
          ++dropped_;
          break;
      }
    }
    items_.push_back(std::move(item));
    ++pushed_;
    if (items_.size() > peak_) peak_ = items_.size();
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Blocks until an item is available or the queue is closed *and*
  /// drained; nullopt only in the latter case, so consumers process every
  /// admitted item before shutting down (graceful drain).
  std::optional<T> Pop() {
    std::unique_lock lock(mu_);
    not_empty_.wait(lock, [&] { return !items_.empty() || closed_; });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  /// Non-blocking Pop; nullopt when the queue is currently empty.
  std::optional<T> TryPop() {
    std::unique_lock lock(mu_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  /// Stops admitting new items and wakes all waiters. Idempotent. Items
  /// already queued remain poppable.
  void Close() {
    {
      std::lock_guard lock(mu_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  bool closed() const {
    std::lock_guard lock(mu_);
    return closed_;
  }

  std::size_t size() const {
    std::lock_guard lock(mu_);
    return items_.size();
  }

  std::size_t capacity() const { return capacity_; }
  OverflowPolicy policy() const { return policy_; }

  /// High-watermark of size() over the queue's lifetime — how close the
  /// backlog has come to saturating the bound (overload forensics).
  std::size_t peak_depth() const { std::lock_guard l(mu_); return peak_; }

  /// Items admitted / bounced by kReject / evicted by kDropOldest.
  std::uint64_t pushed() const { std::lock_guard l(mu_); return pushed_; }
  std::uint64_t rejected() const { std::lock_guard l(mu_); return rejected_; }
  std::uint64_t dropped() const { std::lock_guard l(mu_); return dropped_; }

 private:
  const std::size_t capacity_;
  const OverflowPolicy policy_;

  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  bool closed_ = false;
  std::size_t peak_ = 0;
  std::uint64_t pushed_ = 0;
  std::uint64_t rejected_ = 0;
  std::uint64_t dropped_ = 0;
};

}  // namespace nec::runtime
