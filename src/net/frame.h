// Versioned, length-prefixed binary frame codec for the NEC wire
// protocol (DESIGN.md §5h).
//
// Every message on a connection is one frame:
//
//   offset  size  field
//   0       4     magic      0x4E454331 ("NEC1", LE on the wire)
//   4       1     version    kProtocolVersion (1)
//   5       1     type       FrameType
//   6       2     reserved   must be 0
//   8       8     session id client-assigned wire session id (LE)
//   16      4     payload length in bytes (LE, <= kMaxPayloadBytes)
//   20      4     CRC-32 (IEEE) of the payload bytes (LE)
//   24      ...   payload
//
// The session id lives in the HEADER, not the payload, so a router can
// consistent-hash and forward frames without understanding payload
// schemas. All integers are little-endian; payload floats are IEEE-754
// binary32 in little-endian byte order.
//
// Decoding is incremental (Feed bytes, pop frames) and defensive: a
// malformed header or a CRC mismatch yields a *typed* DecodeStatus — the
// decoder never throws, never reads past what was fed, and latches the
// first error (a byte stream that lied once cannot be trusted to frame
// correctly again; the owner closes the connection and maps the status
// onto the runtime's kBadInput fault taxonomy).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace nec::net {

inline constexpr std::uint32_t kMagic = 0x4E454331u;  // "NEC1"
/// v2 adds the auth handshake (kAuthChallenge/kAuthResponse/kAuthReject),
/// shard load reporting (kStatusRequest/kShardStatus), the draining
/// reshard frames (kDrainSession/kSessionSnapshot/kRestoreSession), and
/// the optional trace-context frame (kTraceContext) — a pure metadata
/// frame, so it rides the same version: peers that predate it reject the
/// type byte and close, which only ever happens when an operator turns
/// tracing on against an old peer.
inline constexpr std::uint8_t kProtocolVersion = 2;
inline constexpr std::size_t kHeaderSize = 24;
/// Generous bound: the largest legitimate frame is one chunk of 192 kHz
/// shadow output (~768 KiB); anything near the cap is an attack or a bug.
inline constexpr std::uint32_t kMaxPayloadBytes = 8u << 20;

/// Closed set of frame types. Values are the wire encoding.
enum class FrameType : std::uint8_t {
  kHello = 1,         ///< client → server: u32 min_version, u32 max_version
  kHelloAck = 2,      ///< server → client: u32 version, u32 input_rate,
                      ///< u32 chunk_samples, u32 output_rate,
                      ///< u32 output_samples_per_chunk
  kOpenSession = 3,   ///< client → server: u64 speaker_seed, u64 ref_seed
  kOpenAck = 4,       ///< server → client: empty
  kSubmitChunk = 5,   ///< client → server: float32[] monitored samples
  kShadowData = 6,    ///< server → client: float32[] shadow (air rate)
  kCloseSession = 7,  ///< client → server: empty (flush tail, then kClosed)
  kClosed = 8,        ///< server → client: empty (all shadow delivered)
  kError = 9,         ///< either: u32 ErrorCategory, then message bytes
  kPing = 10,         ///< either: opaque payload echoed back
  kPong = 11,         ///< reply to kPing with the same payload
  // ------------------------------------------------------------- v2
  kAuthChallenge = 12,  ///< server → client: u64 nonce (sent instead of
                        ///< kHelloAck when a shared secret is configured)
  kAuthResponse = 13,   ///< client → server: u64 tag = SipHash(secret,
                        ///< nonce || header session id)
  kAuthReject = 14,     ///< server → client: u32 ErrorCategory, then
                        ///< message bytes; connection closes after
  kStatusRequest = 15,  ///< router → shard: empty (post-auth)
  kShardStatus = 16,    ///< shard → router: ShardStatusPayload
  kDrainSession = 17,   ///< router → shard: empty; session id in header
                        ///< asks the shard to quiesce + snapshot it
  kSessionSnapshot = 18,  ///< shard → router: SessionSnapshotPayload;
                          ///< the shard has forgotten the session
  kRestoreSession = 19,   ///< router → shard: SessionSnapshotPayload
                          ///< verbatim; shard re-enrolls and replies
                          ///< kOpenAck
  kTraceContext = 20,     ///< client → server (forwarded router → shard):
                          ///< u64 flow id minted by the sender's
                          ///< TraceRecorder; applies to the NEXT
                          ///< kSubmitChunk of the same header session id,
                          ///< stitching that chunk's spans across
                          ///< processes. Receivers without tracing
                          ///< enabled drop it silently — it never
                          ///< changes processing semantics (§5g).
};

const char* FrameTypeName(FrameType type);
bool IsKnownFrameType(std::uint8_t value);

/// One decoded (or to-be-encoded) frame.
struct Frame {
  FrameType type = FrameType::kPing;
  std::uint64_t session_id = 0;
  std::vector<std::uint8_t> payload;
};

/// CRC-32 (IEEE 802.3, reflected, init/xorout 0xFFFFFFFF) — the classic
/// zlib polynomial, table-driven.
std::uint32_t Crc32(const std::uint8_t* data, std::size_t size);
inline std::uint32_t Crc32(std::span<const std::uint8_t> data) {
  return Crc32(data.data(), data.size());
}

/// Appends the wire encoding of `frame` to *out. NEC_CHECKs the payload
/// bound (callers construct payloads; exceeding it is a bug, not input).
void EncodeFrame(const Frame& frame, std::string* out);

/// Typed outcome of one FrameDecoder::Next() call.
enum class DecodeStatus {
  kOk = 0,        ///< *frame holds the next complete frame
  kNeedMore,      ///< not enough buffered bytes yet — Feed more
  kBadMagic,      ///< header does not start with kMagic
  kBadVersion,    ///< version byte != kProtocolVersion
  kBadType,       ///< type byte outside the FrameType enum
  kBadReserved,   ///< reserved header bytes not zero
  kBadLength,     ///< payload length exceeds kMaxPayloadBytes
  kBadCrc,        ///< payload CRC mismatch
};

const char* DecodeStatusName(DecodeStatus status);

/// True for statuses that poison the stream (everything but kOk /
/// kNeedMore).
inline bool IsDecodeError(DecodeStatus status) {
  return status != DecodeStatus::kOk && status != DecodeStatus::kNeedMore;
}

/// Incremental frame parser. Feed() arbitrary byte slices; Next() pops
/// complete frames in order. The first decode error is sticky: every
/// subsequent Next() re-reports it and no further bytes are consumed
/// (the connection owner is expected to drop the stream).
class FrameDecoder {
 public:
  void Feed(const std::uint8_t* data, std::size_t size);
  void Feed(std::span<const std::uint8_t> data) {
    Feed(data.data(), data.size());
  }

  /// Decodes the next buffered frame into *frame (kOk), or reports why it
  /// cannot. Never reads beyond the bytes previously Fed.
  DecodeStatus Next(Frame* frame);

  /// Bytes fed but not yet consumed by successfully decoded frames.
  std::size_t buffered() const { return buffer_.size() - consumed_; }

  bool failed() const { return IsDecodeError(error_); }

  /// Drops all buffered bytes and clears a latched error (a fresh
  /// connection reuses the decoder).
  void Reset();

 private:
  DecodeStatus Latch(DecodeStatus status) {
    error_ = status;
    return status;
  }

  std::vector<std::uint8_t> buffer_;
  std::size_t consumed_ = 0;  ///< prefix of buffer_ already decoded
  DecodeStatus error_ = DecodeStatus::kNeedMore;  ///< latched first error
};

// --------------------------------------------------- payload builders

/// Append little-endian scalars / float arrays to a payload.
void PutU32(std::vector<std::uint8_t>* out, std::uint32_t v);
void PutU64(std::vector<std::uint8_t>* out, std::uint64_t v);
void PutFloats(std::vector<std::uint8_t>* out, std::span<const float> v);

/// Bounds-checked sequential payload reader. Every getter returns false
/// (and poisons the reader) on truncation; ok() must be true after the
/// last read AND complete() true if the schema allows no trailing bytes.
class PayloadReader {
 public:
  explicit PayloadReader(std::span<const std::uint8_t> payload)
      : data_(payload) {}

  bool U32(std::uint32_t* v);
  bool U64(std::uint64_t* v);
  /// Consumes all remaining bytes as float32s (size must be a multiple
  /// of 4).
  bool Floats(std::vector<float>* v);
  /// Consumes all remaining bytes as text.
  std::string RemainingText();

  bool ok() const { return ok_; }
  bool complete() const { return ok_ && offset_ == data_.size(); }
  std::size_t remaining() const { return data_.size() - offset_; }

 private:
  std::span<const std::uint8_t> data_;
  std::size_t offset_ = 0;
  bool ok_ = true;
};

// ------------------------------------------------ v2 payload schemas

/// kShardStatus: a shard's own view of its load, polled by the router's
/// prober so admission control reacts before per-connection buffering
/// becomes the only backpressure.
struct ShardStatusPayload {
  std::uint32_t queue_depth = 0;      ///< runtime pool queue depth
  std::uint32_t active_sessions = 0;  ///< live wire sessions on the shard
  float e2e_p99_ms = 0.0f;            ///< end-to-end p99 (queue + compute)
  std::uint64_t overload_total = 0;   ///< cumulative kOverload rejections
};

void PutShardStatus(std::vector<std::uint8_t>* out,
                    const ShardStatusPayload& status);
/// Strict parse: false on truncation or trailing bytes.
bool ParseShardStatus(std::span<const std::uint8_t> payload,
                      ShardStatusPayload* status);

/// kSessionSnapshot / kRestoreSession: the complete mid-stream state of a
/// sticky session, sufficient to re-enroll it on another shard with
/// bit-identical continuation. Enrollment is seed-deterministic, so only
/// the seeds travel — not the reference audio. The modulation gain latch
/// crosses as raw IEEE-754 bits so the migrated stream applies the exact
/// same gain.
struct SessionSnapshotPayload {
  std::uint64_t speaker_seed = 0;
  std::uint64_t ref_seed = 0;
  std::uint64_t chunks_done = 0;     ///< chunks fully processed pre-drain
  std::uint64_t latch_bits = 0;      ///< bit_cast<u64> of the double
                                     ///< modulation reference peak
                                     ///< (0 bits == not yet latched)
  std::vector<float> tail;           ///< buffered partial-chunk samples
};

void PutSessionSnapshot(std::vector<std::uint8_t>* out,
                        const SessionSnapshotPayload& snapshot);
/// Strict parse: false on truncation or a non-float-aligned tail.
bool ParseSessionSnapshot(std::span<const std::uint8_t> payload,
                          SessionSnapshotPayload* snapshot);

}  // namespace nec::net
