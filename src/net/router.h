// Session-sharding router for a fleet of networked necd shards
// (`necd --route`, DESIGN.md §5h).
//
// The router speaks the same wire protocol on both sides. Clients
// connect exactly as they would to a single shard; the router consistent-
// hashes each new wire session id onto a healthy shard and from then on
// forwards that session's frames verbatim in both directions — the
// session id lives in the frame HEADER, so routing never decodes
// payloads. Assignments are sticky: rebalancing only happens for new
// sessions, never mid-stream (a SessionManager's state cannot move).
//
// Health: a prober thread polls every shard's /healthz endpoint.
// `eject_after` consecutive failures take a shard out of the ring (no new
// sessions), `readmit_after` consecutive successes put it back. When a
// shard dies — probe ejection or its TCP connection dropping — every
// in-flight session pinned to it faults with a kError frame carrying the
// runtime taxonomy (kInvariant: the stream's state is unrecoverable),
// while sessions on other shards keep streaming. That is the same
// containment story the SessionManager gives faults in-process, lifted
// one level up the fleet.
//
// Upstream connections are per (client connection, shard): client wire
// session ids are only unique per client connection, and keeping the
// pairing 1:1 means the shard sees exactly the id space the client chose.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "net/frame.h"
#include "net/net_stats.h"
#include "net/socket.h"
#include "obs/metrics.h"

namespace nec::net {

/// One shard target: data-plane port plus its metrics/health port.
struct ShardSpec {
  std::string host = "127.0.0.1";
  int port = 0;         ///< wire-protocol port
  int health_port = 0;  ///< obs::MetricsServer port (/healthz, /metrics)
};

/// Snapshot of one shard's health as the router sees it.
struct RouterShardStatus {
  ShardSpec spec;
  bool up = false;
  bool saturated = false;  ///< admission control is shedding new sessions
  bool draining = false;   ///< DrainShard() called; no new placements
  bool drained = false;    ///< drain finished: zero sessions remain
  std::uint64_t sessions_active = 0;  ///< sticky assignments currently live
  std::uint64_t sessions_assigned_total = 0;
  std::uint64_t sessions_migrated = 0;  ///< moved OFF this shard by drains
  std::uint64_t ejections = 0;
  std::uint64_t probes_ok = 0;
  std::uint64_t probes_failed = 0;
  std::uint64_t queue_depth = 0;  ///< last kShardStatus load report
  float e2e_p99_ms = 0.0f;
  std::uint64_t overload_total = 0;
};

class Router {
 public:
  struct Options {
    std::string host = "127.0.0.1";
    int port = 0;  ///< 0 = ephemeral; see port() after Start()
    std::vector<ShardSpec> shards;
    int probe_interval_ms = 250;
    std::size_t eject_after = 2;   ///< consecutive probe failures
    std::size_t readmit_after = 2; ///< consecutive probe successes
    int connect_timeout_ms = 1000; ///< dialing a shard's data port
    /// With auth enabled, dialing an upstream runs the hello handshake
    /// synchronously on the poll thread, which head-of-line blocks every
    /// connected client for up to connect_timeout_ms +
    /// upstream_hello_timeout_ms per dial. Keep this tight; a shard too
    /// slow to answer is better treated as down than waited on.
    int upstream_hello_timeout_ms = 500;
    int tick_ms = 5;
    std::size_t max_connections = 1024;
    std::size_t max_outbound_bytes = 64u << 20;
    std::size_t vnodes = 64;  ///< ring points per shard
    /// Shared secret for the v2 auth handshake, used on BOTH faces: the
    /// router challenges its own clients, and answers the shards'
    /// challenges when dialing upstreams. Empty = auth disabled.
    std::string secret;
    /// Admission control: a shard whose kShardStatus load report shows a
    /// queue depth at/above this is saturated — new sessions are shed
    /// with a typed kOverload error instead of being buffered toward it.
    /// The default effectively disables admission control.
    std::uint64_t saturate_queue_depth = ~0ull;
    /// Hysteresis: a saturated shard is readmitted for new sessions only
    /// after `recover_statuses` consecutive load reports at/below
    /// `recover_queue_depth` — so a shard hovering at the threshold
    /// doesn't thrash in and out of the ring.
    std::uint64_t recover_queue_depth = 0;
    std::size_t recover_statuses = 2;
    /// Backlog guard: a new session whose chosen upstream already has
    /// more than this many unflushed bytes is shed with kOverload rather
    /// than buffered behind a shard that is not keeping up.
    std::size_t admission_backlog_bytes = 32u << 20;
  };

  explicit Router(Options options);
  ~Router();

  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  bool Start(std::string* error);
  void Stop();

  int port() const { return port_; }
  NetStatsSnapshot StatsSnapshot() const { return stats_.Snapshot(); }
  std::vector<RouterShardStatus> ShardStatuses() const;

  /// Starts a zero-fault draining reshard of the shard labeled
  /// "host:port": no new sessions are placed on it, every sticky session
  /// is snapshotted by its shard once quiescent and restored onto a
  /// surviving shard (bit-identical stream state), and the shard reports
  /// `drained` once nothing references it. Thread-safe (callable from a
  /// metrics HTTP handler); idempotent. False when no shard matches.
  bool DrainShard(const std::string& label, std::string* error);
  /// nec_net_* (role="router") + per-shard health/session families.
  std::vector<obs::MetricFamily> MetricFamilies() const;

 private:
  struct ShardState;
  struct Upstream;
  struct Connection;

  void Serve();
  void ProbeLoop();
  void ProbeOnce(ShardState& shard);
  /// Polls the shard's load over the wire (kStatusRequest) and runs the
  /// saturation hysteresis. Prober thread only.
  void ProbeStatus(ShardState& shard);
  /// Fetches + caches a kHelloAck payload from any live shard so the
  /// router can answer client kHello itself.
  void RefreshHelloCache();

  void AcceptPending();
  bool ReadClient(Connection& conn);
  /// `received` is when the bytes carrying this frame came off the client
  /// socket — the start of the router_queue hop for submit frames.
  bool HandleClientFrame(Connection& conn, Frame&& frame,
                         std::chrono::steady_clock::time_point received);
  bool ReadUpstream(Connection& conn, std::size_t shard_index);
  /// Encodes `frame` onto the shard's outbound buffer, stamping
  /// `pending_since` when the buffer transitions empty → non-empty (the
  /// start of the upstream_write hop closed by FlushUpstream).
  void ForwardToShard(Connection& conn, std::size_t shard_index,
                      const Frame& frame);
  /// Picks the ring owner for `wire_sid` among up, non-draining,
  /// non-saturated shards; nullopt when none qualifies. When the only
  /// reason nothing qualified was saturation (live shards existed),
  /// *all_saturated is set so the caller sheds with typed kOverload.
  std::optional<std::size_t> PickShard(std::uint64_t wire_sid,
                                       bool* all_saturated) const;
  /// Ring owner for a migrating session: prefers non-saturated shards
  /// but will land on a saturated one rather than fault the session.
  std::optional<std::size_t> PickMigrationTarget(std::uint64_t wire_sid) const;
  bool EnsureUpstream(Connection& conn, std::size_t shard_index);
  /// Routes a draining shard's kSessionSnapshot onto a surviving shard
  /// as kRestoreSession (blob forwarded verbatim).
  void HandleSessionSnapshot(Connection& conn, std::size_t from_shard,
                             Frame&& frame);
  /// Sends kDrainSession for every session still pinned to a draining
  /// shard and flips shards to `drained` once nothing references them.
  void PumpDrains();
  /// kAuthReject to a client + counter + close-after-write.
  void RejectClientAuth(Connection& conn, const std::string& message);
  /// Replies with the cached kHelloAck (or kError(kOverload) when no
  /// shard has ever answered).
  void SendHelloAck(Connection& conn);
  /// Faults every session of `conn` pinned to `shard_index` (kError with
  /// the runtime taxonomy) and closes the upstream.
  void FaultShardSessions(Connection& conn, std::size_t shard_index,
                          const std::string& why);
  /// Faults one mid-reshard session (typed kOverload) and releases its
  /// sticky assignment, migration entry, and any restored target state.
  void FaultMigration(Connection& conn, std::uint64_t wire_sid,
                      const std::string& why);
  /// Applies prober ejections to live connections (poll thread only).
  void ApplyHealthTransitions();

  void SendToClient(Connection& conn, const Frame& frame);
  void SendErrorToClient(Connection& conn, std::uint64_t wire_sid,
                         std::uint32_t category, const std::string& message);
  bool FlushClient(Connection& conn);
  bool FlushUpstream(Connection& conn, std::size_t shard_index);
  void CloseConnection(Connection& conn, bool dropped);

  const Options options_;
  NetStats stats_;

  std::vector<std::unique_ptr<ShardState>> shards_;
  /// (hash point, shard index), sorted by hash — includes DOWN shards;
  /// lookups walk clockwise skipping them.
  std::vector<std::pair<std::uint64_t, std::size_t>> ring_;

  mutable std::mutex hello_mutex_;
  std::optional<std::vector<std::uint8_t>> hello_payload_;

  std::thread serve_thread_;
  std::thread probe_thread_;
  std::atomic<bool> stop_{false};
  int port_ = 0;
  TcpListener listener_;
  std::vector<std::unique_ptr<Connection>> connections_;
};

}  // namespace nec::net
