// Networked serving front end for runtime::SessionManager (DESIGN.md §5h).
//
// NetServer turns `necd` into a shard: it accepts concurrent TCP
// connections on a single poll-loop thread, decodes wire frames
// (net/frame.h), maps kOpenSession/kSubmitChunk onto
// SessionManager::CreateSession/Submit, and streams every session's
// modulated shadow back as kShadowData frames. All heavy compute stays on
// the SessionManager's pool (micro-batching, degradation ladder, fault
// containment all apply unchanged); the poll thread only moves bytes,
// synthesizes enrollment references, and pumps TakeOutput.
//
// Protocol contract (client side sees):
//   kHello        → kHelloAck (rates + chunk geometry; version negotiation)
//   kOpenSession  → kOpenAck, or kError if the wire session id is taken
//   kSubmitChunk  → zero or more kShadowData frames as chunks complete
//   kCloseSession → trailing kShadowData (flush tail) then kClosed
//   any malformed frame → kError(kBadInput, decode status) + disconnect
//
// A faulted session (runtime taxonomy, DESIGN.md §5f) surfaces as a
// kError frame carrying the recorded category; other sessions on the same
// connection keep streaming. Enrollment is seed-based: the client sends
// (speaker_seed, ref_seed) and the server synthesizes the reference clips
// deterministically, so two shards with the same weights serve
// bit-identical shadows for the same session seeds — the property the
// router tests and the fleet bench lean on.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "net/frame.h"
#include "net/net_stats.h"
#include "net/socket.h"
#include "runtime/session_manager.h"

namespace nec::net {

class NetServer {
 public:
  struct Options {
    std::string host = "127.0.0.1";
    int port = 0;  ///< 0 = ephemeral; see port() after Start()
    std::size_t max_connections = 1024;
    /// Poll-loop tick: output pumping + overload nudges run at this
    /// cadence even when no socket event fires.
    int tick_ms = 5;
    /// Connections with no inbound frames AND no open sessions for this
    /// long are dropped (a loadgen that died before opening anything).
    int idle_timeout_ms = 60000;
    /// A peer that stops reading may buffer at most this much pending
    /// shadow output before the connection is dropped.
    std::size_t max_outbound_bytes = 64u << 20;
    /// Enrollment geometry for seed-based kOpenSession (paper: 3 clips
    /// of 3 s). Must match the in-process reference when verifying
    /// bit-exactness.
    std::size_t enroll_refs = 3;
    double enroll_seconds = 3.0;
    /// Rates advertised in kHelloAck. input must match the synth/pipeline
    /// rate the SessionManager was built for; output is the modulated air
    /// rate.
    int input_sample_rate = 16000;
    int output_sample_rate = 192000;
    /// Shared secret for the v2 auth handshake. Empty = auth disabled
    /// (kHello is answered with kHelloAck directly). Non-empty: every
    /// connection must pass challenge–response before any other frame
    /// type is accepted; failures get kAuthReject + disconnect.
    std::string secret;
  };

  /// `manager` must outlive the server.
  NetServer(runtime::SessionManager* manager, Options options);
  ~NetServer();

  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  /// Binds + listens + spawns the poll thread. False with reason in
  /// *error on bind failure.
  bool Start(std::string* error);

  /// Stops the poll thread and closes every connection. Idempotent.
  void Stop();

  int port() const { return port_; }
  const NetStats& stats() const { return stats_; }
  NetStatsSnapshot StatsSnapshot() const { return stats_.Snapshot(); }

  /// Test seam: report this queue depth in kShardStatus replies instead
  /// of the real pool depth (-1 = report the truth). Lets saturation
  /// tests drive the router's admission control deterministically.
  void set_status_depth_override(std::int64_t depth) {
    status_depth_override_.store(depth, std::memory_order_relaxed);
  }

 private:
  struct Connection;
  struct WireSession;

  void Serve();
  void AcceptPending();
  /// Drains readable bytes into the connection's decoder and handles
  /// every complete frame. Returns false when the connection must close.
  bool ReadAndDispatch(Connection& conn);
  bool HandleFrame(Connection& conn, Frame&& frame);
  /// Streams TakeOutput/fault/close progress for every session of `conn`.
  void PumpSessions(Connection& conn);
  void SendFrame(Connection& conn, const Frame& frame);
  void SendError(Connection& conn, std::uint64_t wire_sid,
                 runtime::ErrorCategory category, const std::string& message);
  /// kAuthReject(kAuthRejected) + counter + close-after-write.
  void RejectAuth(Connection& conn, const std::string& message);
  /// kShardStatus reply for a kStatusRequest (load snapshot).
  void SendShardStatus(Connection& conn);
  /// Flushes as much of conn.outbound as the socket accepts right now.
  /// Returns false when the connection must close.
  bool FlushOutbound(Connection& conn);
  void CloseConnection(Connection& conn, bool dropped);

  runtime::SessionManager* const manager_;
  const Options options_;
  NetStats stats_;

  std::thread thread_;
  std::atomic<bool> stop_{false};
  std::atomic<std::int64_t> status_depth_override_{-1};
  int port_ = 0;
  TcpListener listener_;
  std::vector<std::unique_ptr<Connection>> connections_;
};

}  // namespace nec::net
