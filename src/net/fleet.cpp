#include "net/fleet.h"

#include <cinttypes>
#include <cstdio>
#include <utility>

#include "runtime/stats_export.h"

namespace nec::net {
namespace {

obs::MetricFamily* FindOrAddFamily(std::vector<obs::MetricFamily>* merged,
                                   const obs::MetricFamily& src) {
  for (obs::MetricFamily& f : *merged) {
    if (f.name == src.name) return &f;
  }
  obs::MetricFamily fresh;
  fresh.name = src.name;
  fresh.help = src.help;
  fresh.type = src.type;
  merged->push_back(std::move(fresh));
  return &merged->back();
}

obs::Metric* FindOrAddMetric(obs::MetricFamily* family,
                             const obs::Metric& src) {
  for (obs::Metric& m : family->metrics) {
    if (m.labels == src.labels) return &m;
  }
  obs::Metric fresh;
  fresh.labels = src.labels;
  family->metrics.push_back(std::move(fresh));
  return &family->metrics.back();
}

const obs::MetricFamily* FindFamily(
    const std::vector<obs::MetricFamily>& families, const std::string& name) {
  for (const obs::MetricFamily& f : families) {
    if (f.name == name) return &f;
  }
  return nullptr;
}

double SumFamily(const std::vector<obs::MetricFamily>& families,
                 const std::string& name) {
  const obs::MetricFamily* f = FindFamily(families, name);
  if (f == nullptr) return 0.0;
  double total = 0.0;
  for (const obs::Metric& m : f->metrics) total += m.value;
  return total;
}

void AppendDiagnostic(std::string* error, const std::string& what) {
  if (!error->empty()) *error += "; ";
  *error += what;
}

/// Lifts the headline numbers `necctl top` shows from one member's
/// parsed families.
void FillRowHeadlines(const std::vector<obs::MetricFamily>& families,
                      FleetMemberRow* row) {
  row->chunks_total = SumFamily(families, "nec_chunks_processed_total");
  row->queue_depth = SumFamily(families, "nec_queue_depth");
  row->faults_total = SumFamily(families, "nec_faults_total");
  row->deadline_misses_total =
      SumFamily(families, "nec_deadline_misses_total");
  row->auth_rejects_total = SumFamily(families, "nec_net_auth_rejected_total");
  row->degrade_down_total =
      SumFamily(families, "nec_degrade_steps_down_total");
  row->degrade_up_total = SumFamily(families, "nec_degrade_steps_up_total");
  const obs::MetricFamily* e2e =
      FindFamily(families, "nec_chunk_e2e_latency_seconds");
  if (e2e != nullptr && !e2e->metrics.empty()) {
    const obs::HistogramData& h = e2e->metrics.front().histogram;
    row->e2e_count = h.count;
    row->e2e_p50_ms = obs::HistogramQuantile(h, 0.50) * 1000.0;
    row->e2e_p99_ms = obs::HistogramQuantile(h, 0.99) * 1000.0;
  }
}

void AppendJsonNumber(std::string* out, double v) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.10g", v);
  *out += buf;
}

void AppendRowJson(std::string* out, const FleetMemberRow& row) {
  *out += "{\"label\":\"" + obs::JsonEscape(row.label) + "\"";
  *out += ",\"reachable\":";
  *out += row.reachable ? "true" : "false";
  *out += ",\"folded\":";
  *out += row.folded ? "true" : "false";
  *out += ",\"error\":\"" + obs::JsonEscape(row.error) + "\"";
  *out += ",\"chunks_total\":";
  AppendJsonNumber(out, row.chunks_total);
  *out += ",\"queue_depth\":";
  AppendJsonNumber(out, row.queue_depth);
  *out += ",\"e2e_p50_ms\":";
  AppendJsonNumber(out, row.e2e_p50_ms);
  *out += ",\"e2e_p99_ms\":";
  AppendJsonNumber(out, row.e2e_p99_ms);
  *out += ",\"e2e_count\":" + std::to_string(row.e2e_count);
  *out += ",\"faults_total\":";
  AppendJsonNumber(out, row.faults_total);
  *out += ",\"deadline_misses_total\":";
  AppendJsonNumber(out, row.deadline_misses_total);
  *out += ",\"auth_rejects_total\":";
  AppendJsonNumber(out, row.auth_rejects_total);
  *out += ",\"degrade_down_total\":";
  AppendJsonNumber(out, row.degrade_down_total);
  *out += ",\"degrade_up_total\":";
  AppendJsonNumber(out, row.degrade_up_total);
  *out += "}";
}

void AppendShardJson(std::string* out, const RouterShardStatus& s) {
  const std::string label = s.spec.host + ":" + std::to_string(s.spec.port);
  *out += "{\"label\":\"" + obs::JsonEscape(label) + "\"";
  *out += ",\"up\":";
  *out += s.up ? "true" : "false";
  *out += ",\"saturated\":";
  *out += s.saturated ? "true" : "false";
  *out += ",\"draining\":";
  *out += s.draining ? "true" : "false";
  *out += ",\"drained\":";
  *out += s.drained ? "true" : "false";
  *out += ",\"sessions_active\":" + std::to_string(s.sessions_active);
  *out +=
      ",\"sessions_assigned_total\":" + std::to_string(s.sessions_assigned_total);
  *out += ",\"sessions_migrated\":" + std::to_string(s.sessions_migrated);
  *out += ",\"ejections\":" + std::to_string(s.ejections);
  *out += ",\"probes_failed\":" + std::to_string(s.probes_failed);
  *out += ",\"queue_depth\":" + std::to_string(s.queue_depth);
  *out += ",\"e2e_p99_ms\":";
  AppendJsonNumber(out, static_cast<double>(s.e2e_p99_ms));
  *out += ",\"overload_total\":" + std::to_string(s.overload_total);
  *out += "}";
}

}  // namespace

bool FoldMemberMetrics(const std::string& label, const std::string& text,
                       FleetView* view) {
  FleetMemberRow row;
  row.label = label;
  row.reachable = true;
  std::vector<obs::MetricFamily> families;
  std::string error;
  if (!obs::ParsePrometheusText(text, &families, &error)) {
    row.error = "exposition lint: " + error;
    view->rows.push_back(std::move(row));
    return false;
  }
  FillRowHeadlines(families, &row);
  for (const obs::MetricFamily& family : families) {
    obs::MetricFamily* acc = FindOrAddFamily(&view->merged, family);
    if (acc->type != family.type) {
      AppendDiagnostic(&row.error, family.name + ": type conflicts with an "
                                   "earlier member; skipped");
      continue;
    }
    for (const obs::Metric& metric : family.metrics) {
      obs::Metric* target = FindOrAddMetric(acc, metric);
      if (family.type == obs::MetricType::kHistogram) {
        if (runtime::MergeHistogramData(metric.histogram, &target->histogram,
                                        &error) !=
            runtime::HistogramMergeStatus::kOk) {
          AppendDiagnostic(&row.error, family.name + ": " + error);
        }
      } else {
        target->value += metric.value;
      }
    }
  }
  row.folded = true;
  view->folded += 1;
  view->rows.push_back(std::move(row));
  return true;
}

FleetView ScrapeFleet(const std::vector<FleetMember>& members,
                      const obs::HttpGetOptions& http) {
  FleetView view;
  for (const FleetMember& member : members) {
    std::string body;
    std::string error;
    int status = 0;
    if (!obs::HttpGet(member.host, member.port, "/metrics", &body, &status,
                      &error, http) ||
        status != 200) {
      FleetMemberRow row;
      row.label = member.label;
      row.error = error.empty() ? "/metrics returned " + std::to_string(status)
                                : error;
      view.rows.push_back(std::move(row));
      continue;
    }
    FoldMemberMetrics(member.label, body, &view);
  }
  return view;
}

std::string RenderFleetJson(const FleetView& view,
                            const std::vector<RouterShardStatus>& shards) {
  std::string out = "{\"folded\":" + std::to_string(view.folded);
  out += ",\"members\":[";
  for (std::size_t i = 0; i < view.rows.size(); ++i) {
    if (i != 0) out += ",";
    AppendRowJson(&out, view.rows[i]);
  }
  out += "],\"shards\":[";
  for (std::size_t i = 0; i < shards.size(); ++i) {
    if (i != 0) out += ",";
    AppendShardJson(&out, shards[i]);
  }
  // Headline numbers of the MERGED view (true fleet quantiles from the
  // bucket-merged CDF) so `necctl top` needn't re-derive them.
  FleetMemberRow fleet;
  FillRowHeadlines(view.merged, &fleet);
  out += "],\"fleet\":{\"chunks_total\":";
  AppendJsonNumber(&out, fleet.chunks_total);
  out += ",\"queue_depth\":";
  AppendJsonNumber(&out, fleet.queue_depth);
  out += ",\"e2e_p50_ms\":";
  AppendJsonNumber(&out, fleet.e2e_p50_ms);
  out += ",\"e2e_p99_ms\":";
  AppendJsonNumber(&out, fleet.e2e_p99_ms);
  out += ",\"e2e_count\":" + std::to_string(fleet.e2e_count);
  out += ",\"faults_total\":";
  AppendJsonNumber(&out, fleet.faults_total);
  out += ",\"deadline_misses_total\":";
  AppendJsonNumber(&out, fleet.deadline_misses_total);
  out += "},\"merged\":";
  out += obs::RenderMetricsJson(view.merged);
  out += "}";
  return out;
}

std::string RenderFleetText(const FleetView& view,
                            const std::vector<RouterShardStatus>& shards) {
  std::string out;
  char line[256];
  std::snprintf(line, sizeof line, "fleet: %zu/%zu member(s) merged\n\n",
                view.folded, view.rows.size());
  out += line;
  std::snprintf(line, sizeof line, "%-22s %9s %7s %9s %9s %7s %7s %6s\n",
                "member", "chunks", "queue", "p50(ms)", "p99(ms)", "faults",
                "misses", "deg");
  out += line;
  for (const FleetMemberRow& row : view.rows) {
    if (!row.folded) {
      std::snprintf(line, sizeof line, "%-22s DOWN  %s\n", row.label.c_str(),
                    row.error.c_str());
      out += line;
      continue;
    }
    std::snprintf(line, sizeof line,
                  "%-22s %9.0f %7.0f %9.2f %9.2f %7.0f %7.0f %3.0f/%-3.0f\n",
                  row.label.c_str(), row.chunks_total, row.queue_depth,
                  row.e2e_p50_ms, row.e2e_p99_ms, row.faults_total,
                  row.deadline_misses_total, row.degrade_down_total,
                  row.degrade_up_total);
    out += line;
  }
  if (!shards.empty()) {
    out += "\nrouter placement:\n";
    for (const RouterShardStatus& s : shards) {
      const std::string label =
          s.spec.host + ":" + std::to_string(s.spec.port);
      std::snprintf(
          line, sizeof line,
          "%-22s %-4s%s%s%s sessions=%" PRIu64 " migrated=%" PRIu64
          " ejections=%" PRIu64 "\n",
          label.c_str(), s.up ? "up" : "DOWN", s.saturated ? " saturated" : "",
          s.draining ? " draining" : "", s.drained ? " drained" : "",
          s.sessions_active, s.sessions_migrated, s.ejections);
      out += line;
    }
  }
  const obs::MetricFamily* e2e =
      FindFamily(view.merged, "nec_chunk_e2e_latency_seconds");
  if (e2e != nullptr && !e2e->metrics.empty()) {
    const obs::HistogramData& h = e2e->metrics.front().histogram;
    std::snprintf(line, sizeof line,
                  "\nfleet e2e: %" PRIu64 " chunk(s), p50 %.2f ms, p99 %.2f ms\n",
                  h.count, obs::HistogramQuantile(h, 0.50) * 1000.0,
                  obs::HistogramQuantile(h, 0.99) * 1000.0);
    out += line;
  }
  return out;
}

}  // namespace nec::net
