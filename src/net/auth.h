// Shared-secret session authentication for the NEC wire protocol
// (DESIGN.md §5h, protocol v2).
//
// TLS-less by design: the fleet runs on trusted interconnect, but the
// hello exchange must still prove the peer knows the deployment secret
// before it can enroll sessions (the paper's threat model makes the
// shadowing service the trusted party — an open enrollment path would
// let any jammer-style adversary flood it). The handshake is a classic
// challenge–response:
//
//   client → kHello            (versions, as v1)
//   server → kAuthChallenge    (fresh random u64 nonce)
//   client → kAuthResponse     (u64 tag = AuthTag(secret, nonce))
//   server → kHelloAck         (as v1) — or kAuthReject + close
//
// The tag is SipHash-2-4 keyed by the secret over the nonce, so it
// proves possession of the secret without revealing it, and a tag
// replayed onto another connection fails because that connection was
// issued a different nonce — per-connection freshness comes entirely
// from the nonce; connections have no other identity to bind. This is
// authentication only — frames are not encrypted; deployments needing
// confidentiality tunnel the port.
#pragma once

#include <cstdint>
#include <string_view>

namespace nec::net {

/// SipHash-2-4 of `data`, keyed by (k0, k1). Reference algorithm
/// (Aumasson & Bernstein), dependency-free.
std::uint64_t SipHash24(std::uint64_t k0, std::uint64_t k1,
                        const std::uint8_t* data, std::size_t size);

/// The keyed response tag: SipHash-2-4 over the 8-byte little-endian
/// nonce, keyed by two domain-separated FNV-1a digests of the secret
/// (folding secret || "nec-auth-k0"/"-k1", so the halves are not related
/// by a constant delta). Dependency-free, not a vetted KDF: deployments
/// needing real cryptographic strength should tunnel the port.
std::uint64_t AuthTag(std::string_view secret, std::uint64_t nonce);

/// A fresh unpredictable nonce (std::random_device mixed with a
/// process-wide counter so even a stuck entropy source never repeats).
std::uint64_t RandomNonce();

}  // namespace nec::net
