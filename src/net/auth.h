// Shared-secret session authentication for the NEC wire protocol
// (DESIGN.md §5h, protocol v2).
//
// TLS-less by design: the fleet runs on trusted interconnect, but the
// hello exchange must still prove the peer knows the deployment secret
// before it can enroll sessions (the paper's threat model makes the
// shadowing service the trusted party — an open enrollment path would
// let any jammer-style adversary flood it). The handshake is a classic
// challenge–response:
//
//   client → kHello            (versions, as v1)
//   server → kAuthChallenge    (fresh random u64 nonce)
//   client → kAuthResponse     (u64 tag = AuthTag(secret, nonce, id))
//   server → kHelloAck         (as v1) — or kAuthReject + close
//
// The tag is SipHash-2-4 keyed by the secret over (nonce || client id),
// so it proves possession of the secret without revealing it, and a tag
// replayed onto another connection fails because that connection was
// issued a different nonce. This is authentication only — frames are
// not encrypted; deployments needing confidentiality tunnel the port.
#pragma once

#include <cstdint>
#include <string_view>

namespace nec::net {

/// SipHash-2-4 of `data`, keyed by (k0, k1). Reference algorithm
/// (Aumasson & Bernstein), dependency-free.
std::uint64_t SipHash24(std::uint64_t k0, std::uint64_t k1,
                        const std::uint8_t* data, std::size_t size);

/// The keyed response tag: SipHash-2-4 over the 16-byte little-endian
/// message (nonce || client_id), with the 128-bit key derived from the
/// secret via two independent FNV-1a folds. `client_id` binds the tag to
/// the connection's identity so it cannot be lifted onto another hello.
std::uint64_t AuthTag(std::string_view secret, std::uint64_t nonce,
                      std::uint64_t client_id);

/// A fresh unpredictable nonce (std::random_device mixed with a
/// process-wide counter so even a stuck entropy source never repeats).
std::uint64_t RandomNonce();

}  // namespace nec::net
