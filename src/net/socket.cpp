#include "net/socket.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <mutex>

namespace nec::net {
namespace {

void SetError(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
}

/// Remaining budget of a deadline started `t0` with `timeout_ms` total;
/// < 0 timeouts mean "wait forever" and always return -1 (poll's forever).
int RemainingMs(std::chrono::steady_clock::time_point t0, int timeout_ms) {
  if (timeout_ms < 0) return -1;
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                           std::chrono::steady_clock::now() - t0)
                           .count();
  const long long left = timeout_ms - elapsed;
  return left > 0 ? static_cast<int>(left) : 0;
}

/// poll() one fd for `events`, retrying EINTR against the same deadline.
/// Returns >0 ready, 0 timeout, <0 error.
int PollOne(int fd, short events, int timeout_ms) {
  const auto t0 = std::chrono::steady_clock::now();
  for (;;) {
    struct pollfd pfd{fd, events, 0};
    const int pr = ::poll(&pfd, 1, RemainingMs(t0, timeout_ms));
    if (pr >= 0) return pr;
    if (errno != EINTR) return -1;
  }
}

bool ResolveIpv4(const std::string& host, in_addr* out) {
  const std::string resolved = host == "localhost" ? "127.0.0.1" : host;
  return ::inet_pton(AF_INET, resolved.c_str(), out) == 1;
}

}  // namespace

const char* IoStatusName(IoStatus status) {
  switch (status) {
    case IoStatus::kOk: return "ok";
    case IoStatus::kTimeout: return "timeout";
    case IoStatus::kClosed: return "closed";
    case IoStatus::kError: return "error";
  }
  return "?";
}

void IgnoreSigpipe() {
  static std::once_flag flag;
  std::call_once(flag, [] { std::signal(SIGPIPE, SIG_IGN); });
}

bool SetNonBlocking(int fd, bool nonblocking) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return false;
  const int next = nonblocking ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  return ::fcntl(fd, F_SETFL, next) == 0;
}

IoStatus ReadFull(int fd, void* buf, std::size_t size, int timeout_ms,
                  std::string* error) {
  const auto t0 = std::chrono::steady_clock::now();
  std::size_t off = 0;
  char* bytes = static_cast<char*>(buf);
  while (off < size) {
    const int pr = PollOne(fd, POLLIN, RemainingMs(t0, timeout_ms));
    if (pr == 0) {
      SetError(error, "read timed out");
      return IoStatus::kTimeout;
    }
    if (pr < 0) {
      SetError(error, std::string("poll: ") + std::strerror(errno));
      return IoStatus::kError;
    }
    const ssize_t n = ::recv(fd, bytes + off, size - off, 0);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n == 0) {
      SetError(error, "connection closed by peer");
      return IoStatus::kClosed;
    }
    if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
    SetError(error, std::string("recv: ") + std::strerror(errno));
    return IoStatus::kError;
  }
  return IoStatus::kOk;
}

IoStatus WriteFull(int fd, const void* buf, std::size_t size, int timeout_ms,
                   std::string* error) {
  const auto t0 = std::chrono::steady_clock::now();
  std::size_t off = 0;
  const char* bytes = static_cast<const char*>(buf);
  while (off < size) {
    const int pr = PollOne(fd, POLLOUT, RemainingMs(t0, timeout_ms));
    if (pr == 0) {
      SetError(error, "write timed out");
      return IoStatus::kTimeout;
    }
    if (pr < 0) {
      SetError(error, std::string("poll: ") + std::strerror(errno));
      return IoStatus::kError;
    }
    const ssize_t n = ::send(fd, bytes + off, size - off,
#if defined(MSG_NOSIGNAL)
                             MSG_NOSIGNAL
#else
                             0
#endif
    );
    if (n >= 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
    if (errno == EPIPE || errno == ECONNRESET) {
      SetError(error, "connection closed by peer");
      return IoStatus::kClosed;
    }
    SetError(error, std::string("send: ") + std::strerror(errno));
    return IoStatus::kError;
  }
  return IoStatus::kOk;
}

int DialTcp(const std::string& host, int port, int connect_timeout_ms,
            std::string* error) {
  IgnoreSigpipe();
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (port <= 0 || port > 65535 || !ResolveIpv4(host, &addr.sin_addr)) {
    SetError(error,
             "bad endpoint (IPv4 literal or localhost, port 1-65535): " +
                 host + ":" + std::to_string(port));
    return -1;
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    SetError(error, std::string("socket: ") + std::strerror(errno));
    return -1;
  }
  if (!SetNonBlocking(fd, true)) {
    SetError(error, std::string("fcntl: ") + std::strerror(errno));
    ::close(fd);
    return -1;
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    if (errno != EINPROGRESS) {
      SetError(error, std::string(errno == ECONNREFUSED
                                      ? "connection refused"
                                      : std::strerror(errno)) +
                          " (" + host + ":" + std::to_string(port) + ")");
      ::close(fd);
      return -1;
    }
    const int pr = PollOne(fd, POLLOUT, connect_timeout_ms);
    if (pr == 0) {
      SetError(error, "connect timed out after " +
                          std::to_string(connect_timeout_ms) + " ms (" +
                          host + ":" + std::to_string(port) + ")");
      ::close(fd);
      return -1;
    }
    int so_error = 0;
    socklen_t len = sizeof so_error;
    if (pr < 0 ||
        ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &so_error, &len) != 0 ||
        so_error != 0) {
      SetError(error, std::string(so_error == ECONNREFUSED
                                      ? "connection refused"
                                      : std::strerror(so_error)) +
                          " (" + host + ":" + std::to_string(port) + ")");
      ::close(fd);
      return -1;
    }
  }
  if (!SetNonBlocking(fd, false)) {
    SetError(error, std::string("fcntl: ") + std::strerror(errno));
    ::close(fd);
    return -1;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return fd;
}

bool ParseHostPort(const std::string& spec, std::string* host, int* port) {
  const std::size_t colon = spec.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 >= spec.size()) {
    return false;
  }
  char* end = nullptr;
  const long p = std::strtol(spec.c_str() + colon + 1, &end, 10);
  if (end == nullptr || *end != '\0' || p <= 0 || p > 65535) return false;
  *host = spec.substr(0, colon);
  *port = static_cast<int>(p);
  return true;
}

bool TcpListener::Listen(const std::string& host, int port,
                         std::string* error) {
  IgnoreSigpipe();
  Close();
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    SetError(error, std::string("socket: ") + std::strerror(errno));
    return false;
  }
  const int one = 1;
  ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (!ResolveIpv4(host, &addr.sin_addr)) {
    SetError(error, "bad listen address: " + host);
    Close();
    return false;
  }
  if (::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    SetError(error, std::string("bind ") + host + ":" +
                        std::to_string(port) + ": " + std::strerror(errno));
    Close();
    return false;
  }
  if (::listen(fd_, 128) != 0) {
    SetError(error, std::string("listen: ") + std::strerror(errno));
    Close();
    return false;
  }
  if (!SetNonBlocking(fd_, true)) {
    SetError(error, std::string("fcntl: ") + std::strerror(errno));
    Close();
    return false;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
    port_ = ntohs(bound.sin_port);
  }
  return true;
}

int TcpListener::Accept() {
  if (fd_ < 0) return -1;
  for (;;) {
    const int fd = ::accept(fd_, nullptr, nullptr);
    if (fd >= 0) {
      SetNonBlocking(fd, true);
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
      return fd;
    }
    if (errno == EINTR) continue;
    return -1;
  }
}

void TcpListener::Close() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
  port_ = 0;
}

}  // namespace nec::net
