// Client side of the NEC wire protocol (DESIGN.md §5h).
//
// NetClient multiplexes any number of wire sessions over ONE TCP
// connection: open sessions by (speaker_seed, ref_seed), submit
// chunk-sized sample spans, and collect the shadow stream the shard sends
// back per session. Submits are fire-and-forget; receiving is explicit —
// call PumpOnce() (or the blocking Wait* helpers) to drain inbound frames
// into per-session state. That split lets a single-session test run
// simple blocking calls while `necctl loadgen` drives hundreds of
// sessions across many NetClients from one poll loop (see loadgen.h).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/frame.h"

namespace nec::net {

/// kHelloAck contents: negotiated version plus the shard's chunk
/// geometry (input samples per chunk, and how many output samples each
/// full chunk produces at the modulated air rate).
struct HelloInfo {
  std::uint32_t version = 0;
  std::uint32_t input_sample_rate = 0;
  std::uint32_t chunk_samples = 0;
  std::uint32_t output_sample_rate = 0;
  std::uint32_t output_samples_per_chunk = 0;
};

/// A kError frame recorded against a session (or the connection, for
/// wire session id 0).
struct WireError {
  std::uint32_t category = 0;  ///< runtime::ErrorCategory value
  std::string message;
};

/// Receive-side state of one wire session.
struct WireSessionState {
  bool open_acked = false;
  bool closed = false;  ///< kClosed seen: `shadow` is complete
  std::optional<WireError> error;
  std::vector<float> shadow;  ///< air-rate samples, stream order

  bool done() const { return closed || error.has_value(); }
};

class NetClient {
 public:
  NetClient() = default;
  ~NetClient();

  NetClient(const NetClient&) = delete;
  NetClient& operator=(const NetClient&) = delete;

  bool Connect(const std::string& host, int port, int connect_timeout_ms,
               std::string* error);
  void Close();
  bool connected() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  /// Detaches and returns the connected socket (-1 when closed), leaving
  /// this client disconnected. Lets the router run the blocking hello +
  /// auth handshake through a NetClient and then adopt the socket into
  /// its own poll loop. Only safe when no partial frame is buffered —
  /// i.e. right after a handshake, before any streaming.
  int ReleaseFd() {
    const int fd = fd_;
    fd_ = -1;
    decoder_.Reset();
    return fd;
  }

  /// Shared secret for the v2 auth handshake. Set before Hello(); when
  /// the server challenges, the client answers with the keyed tag. With
  /// no secret set, a challenge fails the hello (the server demands auth
  /// this client cannot provide).
  void set_secret(std::string secret) { secret_ = std::move(secret); }

  /// Version (+ auth, when the server demands it) handshake; blocks up
  /// to timeout_ms for the ack.
  bool Hello(HelloInfo* info, int timeout_ms, std::string* error);

  /// True when the server answered the handshake with kAuthReject —
  /// distinct from refused/timeout so callers can report credential
  /// failures as their own class.
  bool auth_rejected() const { return auth_rejected_; }

  /// Polls the shard's load (kStatusRequest → kShardStatus). Blocks up
  /// to timeout_ms; requires a completed Hello on an authed connection.
  bool QueryStatus(ShardStatusPayload* status, int timeout_ms,
                   std::string* error);

  /// Opens a wire session (client-assigned id) and blocks for the ack.
  bool OpenSession(std::uint64_t wire_sid, std::uint64_t speaker_seed,
                   std::uint64_t ref_seed, int timeout_ms,
                   std::string* error);

  /// Fire-and-forget variants for poll-loop callers: the ack/result is
  /// observed later via session() after PumpOnce().
  bool SendOpenSession(std::uint64_t wire_sid, std::uint64_t speaker_seed,
                       std::uint64_t ref_seed, std::string* error);
  bool SubmitChunk(std::uint64_t wire_sid, std::span<const float> samples,
                   std::string* error);
  bool SendCloseSession(std::uint64_t wire_sid, std::string* error);
  bool Ping(std::span<const std::uint8_t> payload, std::string* error);

  /// Reads whatever is available (blocking up to timeout_ms for the first
  /// byte; 0 = only what's already readable) and dispatches every
  /// complete frame into session state. False on transport/decode
  /// failure with the reason in *error; a plain timeout with nothing read
  /// returns true with *timed_out set.
  bool PumpOnce(int timeout_ms, bool* timed_out, std::string* error);

  /// Pumps until session `wire_sid` is done (kClosed or kError) or
  /// timeout_ms elapses.
  bool WaitDone(std::uint64_t wire_sid, int timeout_ms, std::string* error);

  /// Receive-side state of a session (creates the slot on first use).
  const WireSessionState& session(std::uint64_t wire_sid) {
    return sessions_[wire_sid];
  }
  /// Mutable access so callers can steal a finished session's shadow
  /// buffer instead of copying it (loadgen with keep_shadows).
  WireSessionState* mutable_session(std::uint64_t wire_sid) {
    return &sessions_[wire_sid];
  }
  /// A kError frame addressed to wire session id 0 — connection scope.
  const std::optional<WireError>& connection_error() const {
    return connection_error_;
  }
  const std::optional<HelloInfo>& hello_info() const { return hello_info_; }

  std::uint64_t bytes_in() const { return bytes_in_; }
  std::uint64_t bytes_out() const { return bytes_out_; }
  std::uint64_t frames_in() const { return frames_in_; }

 private:
  bool SendFrame(const Frame& frame, std::string* error);
  void Dispatch(Frame&& frame);

  int fd_ = -1;
  int io_timeout_ms_ = 10000;  ///< write deadline per frame
  FrameDecoder decoder_;
  std::string secret_;
  bool auth_rejected_ = false;
  std::unordered_map<std::uint64_t, WireSessionState> sessions_;
  std::optional<WireError> connection_error_;
  std::optional<HelloInfo> hello_info_;
  std::optional<ShardStatusPayload> shard_status_;
  std::uint64_t bytes_in_ = 0;
  std::uint64_t bytes_out_ = 0;
  std::uint64_t frames_in_ = 0;
};

}  // namespace nec::net
