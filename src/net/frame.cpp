#include "net/frame.h"

#include <array>
#include <bit>
#include <cstring>

#include "common/check.h"

namespace nec::net {
namespace {

std::array<std::uint32_t, 256> MakeCrcTable() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

std::uint32_t LoadU32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         static_cast<std::uint32_t>(p[1]) << 8 |
         static_cast<std::uint32_t>(p[2]) << 16 |
         static_cast<std::uint32_t>(p[3]) << 24;
}

std::uint64_t LoadU64(const std::uint8_t* p) {
  return static_cast<std::uint64_t>(LoadU32(p)) |
         static_cast<std::uint64_t>(LoadU32(p + 4)) << 32;
}

void StoreU32(std::uint8_t* p, std::uint32_t v) {
  p[0] = static_cast<std::uint8_t>(v);
  p[1] = static_cast<std::uint8_t>(v >> 8);
  p[2] = static_cast<std::uint8_t>(v >> 16);
  p[3] = static_cast<std::uint8_t>(v >> 24);
}

void StoreU64(std::uint8_t* p, std::uint64_t v) {
  StoreU32(p, static_cast<std::uint32_t>(v));
  StoreU32(p + 4, static_cast<std::uint32_t>(v >> 32));
}

}  // namespace

const char* FrameTypeName(FrameType type) {
  switch (type) {
    case FrameType::kHello: return "hello";
    case FrameType::kHelloAck: return "hello_ack";
    case FrameType::kOpenSession: return "open_session";
    case FrameType::kOpenAck: return "open_ack";
    case FrameType::kSubmitChunk: return "submit_chunk";
    case FrameType::kShadowData: return "shadow_data";
    case FrameType::kCloseSession: return "close_session";
    case FrameType::kClosed: return "closed";
    case FrameType::kError: return "error";
    case FrameType::kPing: return "ping";
    case FrameType::kPong: return "pong";
    case FrameType::kAuthChallenge: return "auth_challenge";
    case FrameType::kAuthResponse: return "auth_response";
    case FrameType::kAuthReject: return "auth_reject";
    case FrameType::kStatusRequest: return "status_request";
    case FrameType::kShardStatus: return "shard_status";
    case FrameType::kDrainSession: return "drain_session";
    case FrameType::kSessionSnapshot: return "session_snapshot";
    case FrameType::kRestoreSession: return "restore_session";
    case FrameType::kTraceContext: return "trace_context";
  }
  return "?";
}

bool IsKnownFrameType(std::uint8_t value) {
  return value >= static_cast<std::uint8_t>(FrameType::kHello) &&
         value <= static_cast<std::uint8_t>(FrameType::kTraceContext);
}

std::uint32_t Crc32(const std::uint8_t* data, std::size_t size) {
  static const std::array<std::uint32_t, 256> table = MakeCrcTable();
  std::uint32_t crc = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < size; ++i) {
    crc = table[(crc ^ data[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

void EncodeFrame(const Frame& frame, std::string* out) {
  NEC_CHECK_MSG(frame.payload.size() <= kMaxPayloadBytes,
                "frame payload exceeds kMaxPayloadBytes");
  std::uint8_t header[kHeaderSize];
  StoreU32(header, kMagic);
  header[4] = kProtocolVersion;
  header[5] = static_cast<std::uint8_t>(frame.type);
  header[6] = 0;
  header[7] = 0;
  StoreU64(header + 8, frame.session_id);
  StoreU32(header + 16, static_cast<std::uint32_t>(frame.payload.size()));
  StoreU32(header + 20, Crc32(frame.payload.data(), frame.payload.size()));
  out->append(reinterpret_cast<const char*>(header), kHeaderSize);
  out->append(reinterpret_cast<const char*>(frame.payload.data()),
              frame.payload.size());
}

const char* DecodeStatusName(DecodeStatus status) {
  switch (status) {
    case DecodeStatus::kOk: return "ok";
    case DecodeStatus::kNeedMore: return "need_more";
    case DecodeStatus::kBadMagic: return "bad_magic";
    case DecodeStatus::kBadVersion: return "bad_version";
    case DecodeStatus::kBadType: return "bad_type";
    case DecodeStatus::kBadReserved: return "bad_reserved";
    case DecodeStatus::kBadLength: return "bad_length";
    case DecodeStatus::kBadCrc: return "bad_crc";
  }
  return "?";
}

void FrameDecoder::Feed(const std::uint8_t* data, std::size_t size) {
  if (failed()) return;  // poisoned streams accumulate nothing
  // Compact the consumed prefix before growing (keeps the buffer bounded
  // by one partial frame plus whatever was just fed).
  if (consumed_ > 0) {
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<std::ptrdiff_t>(consumed_));
    consumed_ = 0;
  }
  buffer_.insert(buffer_.end(), data, data + size);
}

DecodeStatus FrameDecoder::Next(Frame* frame) {
  if (failed()) return error_;
  const std::size_t avail = buffer_.size() - consumed_;
  if (avail < kHeaderSize) return DecodeStatus::kNeedMore;
  const std::uint8_t* h = buffer_.data() + consumed_;

  if (LoadU32(h) != kMagic) return Latch(DecodeStatus::kBadMagic);
  if (h[4] != kProtocolVersion) return Latch(DecodeStatus::kBadVersion);
  if (!IsKnownFrameType(h[5])) return Latch(DecodeStatus::kBadType);
  if (h[6] != 0 || h[7] != 0) return Latch(DecodeStatus::kBadReserved);
  const std::uint32_t payload_len = LoadU32(h + 16);
  if (payload_len > kMaxPayloadBytes) return Latch(DecodeStatus::kBadLength);
  if (avail < kHeaderSize + payload_len) return DecodeStatus::kNeedMore;

  const std::uint8_t* payload = h + kHeaderSize;
  if (Crc32(payload, payload_len) != LoadU32(h + 20)) {
    return Latch(DecodeStatus::kBadCrc);
  }

  frame->type = static_cast<FrameType>(h[5]);
  frame->session_id = LoadU64(h + 8);
  frame->payload.assign(payload, payload + payload_len);
  consumed_ += kHeaderSize + payload_len;
  return DecodeStatus::kOk;
}

void FrameDecoder::Reset() {
  buffer_.clear();
  consumed_ = 0;
  error_ = DecodeStatus::kNeedMore;
}

void PutU32(std::vector<std::uint8_t>* out, std::uint32_t v) {
  const std::size_t at = out->size();
  out->resize(at + 4);
  StoreU32(out->data() + at, v);
}

void PutU64(std::vector<std::uint8_t>* out, std::uint64_t v) {
  const std::size_t at = out->size();
  out->resize(at + 8);
  StoreU64(out->data() + at, v);
}

void PutFloats(std::vector<std::uint8_t>* out, std::span<const float> v) {
  const std::size_t at = out->size();
  out->resize(at + v.size() * sizeof(float));
  // IEEE-754 binary32; every supported target is little-endian, which is
  // also the wire order, so a straight copy is exact.
  std::memcpy(out->data() + at, v.data(), v.size() * sizeof(float));
}

bool PayloadReader::U32(std::uint32_t* v) {
  if (!ok_ || data_.size() - offset_ < 4) {
    ok_ = false;
    return false;
  }
  *v = LoadU32(data_.data() + offset_);
  offset_ += 4;
  return true;
}

bool PayloadReader::U64(std::uint64_t* v) {
  if (!ok_ || data_.size() - offset_ < 8) {
    ok_ = false;
    return false;
  }
  *v = LoadU64(data_.data() + offset_);
  offset_ += 8;
  return true;
}

bool PayloadReader::Floats(std::vector<float>* v) {
  if (!ok_ || (data_.size() - offset_) % sizeof(float) != 0) {
    ok_ = false;
    return false;
  }
  const std::size_t count = (data_.size() - offset_) / sizeof(float);
  v->resize(count);
  if (count > 0) {
    std::memcpy(v->data(), data_.data() + offset_, count * sizeof(float));
  }
  offset_ = data_.size();
  return true;
}

std::string PayloadReader::RemainingText() {
  if (!ok_) return {};
  std::string text(reinterpret_cast<const char*>(data_.data() + offset_),
                   data_.size() - offset_);
  offset_ = data_.size();
  return text;
}

void PutShardStatus(std::vector<std::uint8_t>* out,
                    const ShardStatusPayload& status) {
  PutU32(out, status.queue_depth);
  PutU32(out, status.active_sessions);
  PutU32(out, std::bit_cast<std::uint32_t>(status.e2e_p99_ms));
  PutU64(out, status.overload_total);
}

bool ParseShardStatus(std::span<const std::uint8_t> payload,
                      ShardStatusPayload* status) {
  PayloadReader reader(payload);
  std::uint32_t p99_bits = 0;
  if (!reader.U32(&status->queue_depth) ||
      !reader.U32(&status->active_sessions) || !reader.U32(&p99_bits) ||
      !reader.U64(&status->overload_total) || !reader.complete()) {
    return false;
  }
  status->e2e_p99_ms = std::bit_cast<float>(p99_bits);
  return true;
}

void PutSessionSnapshot(std::vector<std::uint8_t>* out,
                        const SessionSnapshotPayload& snapshot) {
  PutU64(out, snapshot.speaker_seed);
  PutU64(out, snapshot.ref_seed);
  PutU64(out, snapshot.chunks_done);
  PutU64(out, snapshot.latch_bits);
  PutFloats(out, snapshot.tail);
}

bool ParseSessionSnapshot(std::span<const std::uint8_t> payload,
                          SessionSnapshotPayload* snapshot) {
  PayloadReader reader(payload);
  return reader.U64(&snapshot->speaker_seed) &&
         reader.U64(&snapshot->ref_seed) &&
         reader.U64(&snapshot->chunks_done) &&
         reader.U64(&snapshot->latch_bits) &&
         reader.Floats(&snapshot->tail) && reader.complete();
}

}  // namespace nec::net
