#include "net/router.h"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <bit>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <unordered_map>

#include "net/auth.h"
#include "net/client.h"
#include "obs/http.h"
#include "obs/log.h"
#include "obs/trace.h"
#include "runtime/fault.h"
#include "runtime/stats.h"

namespace nec::net {
namespace {

constexpr const char* kComponent = "net.router";

/// splitmix64 finalizer — cheap, well-mixed 64-bit hash for ring points
/// and session placement.
std::uint64_t Mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

void SleepMsInterruptible(int total_ms, const std::atomic<bool>& stop) {
  for (int waited = 0; waited < total_ms && !stop.load(std::memory_order_relaxed);
       waited += 10) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
}

double MsSince(std::chrono::steady_clock::time_point t) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t)
      .count();
}

}  // namespace

/// Health + placement bookkeeping for one shard. `up`,`sessions_active`
/// and the probe counters cross threads (prober / poll loop / metrics
/// snapshots) and are atomics; the consecutive counters are
/// prober-thread-only.
struct Router::ShardState {
  ShardSpec spec;
  std::string label;  ///< "host:port" for logs and metric labels
  std::atomic<bool> up{false};
  std::size_t consecutive_failures = 0;
  std::size_t consecutive_successes = 0;
  std::atomic<std::uint64_t> sessions_active{0};
  std::atomic<std::uint64_t> sessions_assigned_total{0};
  std::atomic<std::uint64_t> ejections{0};
  std::atomic<std::uint64_t> probes_ok{0};
  std::atomic<std::uint64_t> probes_failed{0};

  /// Admission control (set by the prober from kShardStatus reports,
  /// read by the poll loop's PickShard).
  std::atomic<bool> saturated{false};
  std::size_t calm_statuses = 0;  ///< prober-thread-only hysteresis count
  std::atomic<std::uint64_t> load_queue_depth{0};
  std::atomic<std::uint32_t> load_e2e_p99_bits{0};  ///< float, bit-stored
  std::atomic<std::uint64_t> load_overload_total{0};

  /// Draining reshard (DrainShard sets `draining`; the poll loop flips
  /// `drained` once no session or migration references the shard).
  std::atomic<bool> draining{false};
  std::atomic<bool> drained{false};
  std::atomic<std::uint64_t> sessions_migrated{0};

  /// Persistent wire connection the prober uses for kStatusRequest
  /// polls (lazily dialed, redialed on failure). Prober thread only.
  std::unique_ptr<NetClient> status_client;
};

/// Router-side connection to one shard on behalf of ONE client
/// connection (wire session ids are only unique per client).
struct Router::Upstream {
  int fd = -1;
  FrameDecoder decoder;
  std::string outbound;
  std::size_t out_off = 0;
  /// When the oldest unflushed byte was enqueued (valid while the buffer
  /// is non-empty). FlushUpstream records the upstream_write hop from it
  /// once the buffer fully drains.
  std::chrono::steady_clock::time_point pending_since{};

  bool connected() const { return fd >= 0; }
  bool has_pending() const { return out_off < outbound.size(); }
};

struct Router::Connection {
  /// One sticky session mid-reshard. Created when the router asks the
  /// old shard to drain the session; client frames arriving in the
  /// window are parked (encoded, in order) and flushed to the new shard
  /// once its restore ack lands, so the client observes an unbroken
  /// stream.
  struct Migration {
    static constexpr std::size_t kNoTarget = static_cast<std::size_t>(-1);
    std::size_t from_shard = 0;
    std::size_t target = kNoTarget;  ///< set once the snapshot is placed
    std::string parked;              ///< encoded client frames, FIFO
  };

  int fd = -1;
  FrameDecoder decoder;
  std::string outbound;
  std::size_t out_off = 0;
  bool close_after_write = false;
  bool authed = false;      ///< v2 handshake done (or auth disabled)
  bool challenged = false;  ///< kAuthChallenge outstanding
  std::uint64_t nonce = 0;
  std::unordered_map<std::uint64_t, std::size_t> session_shard;  ///< sid → shard
  std::unordered_map<std::uint64_t, Migration> migrations;  ///< sid → reshard
  /// Flow id announced by the last kTraceContext per session, consumed by
  /// that session's next kSubmitChunk so the router.forward span joins the
  /// client's cross-process flow. Purely observational — never gates
  /// forwarding.
  std::unordered_map<std::uint64_t, std::uint64_t> pending_flow;
  std::vector<Upstream> upstreams;  ///< index-aligned with Router::shards_
  /// Poll-thread copy of each shard's up flag, used to detect down
  /// transitions that require faulting this connection's sessions.
  std::vector<bool> last_up;
};

Router::Router(Options options) : options_(std::move(options)) {
  for (const ShardSpec& spec : options_.shards) {
    auto shard = std::make_unique<ShardState>();
    shard->spec = spec;
    shard->label = spec.host + ":" + std::to_string(spec.port);
    shards_.push_back(std::move(shard));
  }
}

Router::~Router() { Stop(); }

bool Router::Start(std::string* error) {
  if (shards_.empty()) {
    if (error != nullptr) *error = "router: no shards configured";
    return false;
  }
  IgnoreSigpipe();
  if (!listener_.Listen(options_.host, options_.port, error)) return false;
  port_ = listener_.port();

  // Ring over ALL shards (down ones are skipped at lookup time), so a
  // readmitted shard gets back exactly the ring segments it had.
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    for (std::size_t v = 0; v < options_.vnodes; ++v) {
      ring_.emplace_back(Mix64((s + 1) * 0x100000001B3ull + v), s);
    }
  }
  std::sort(ring_.begin(), ring_.end());

  // One synchronous probe round so the first client sees real health
  // (and the hello cache is warm when any shard is alive).
  for (auto& shard : shards_) ProbeOnce(*shard);
  RefreshHelloCache();

  stop_.store(false, std::memory_order_relaxed);
  serve_thread_ = std::thread([this] { Serve(); });
  probe_thread_ = std::thread([this] { ProbeLoop(); });
  NEC_LOG_INFO(kComponent, "routing %zu shard(s) on %s:%d", shards_.size(),
               options_.host.c_str(), port_);
  return true;
}

void Router::Stop() {
  if (!serve_thread_.joinable() && !probe_thread_.joinable()) return;
  stop_.store(true, std::memory_order_relaxed);
  if (serve_thread_.joinable()) serve_thread_.join();
  if (probe_thread_.joinable()) probe_thread_.join();
  for (auto& conn : connections_) CloseConnection(*conn, /*dropped=*/true);
  connections_.clear();
  listener_.Close();
}

// ------------------------------------------------------------- probing

void Router::ProbeLoop() {
  while (!stop_.load(std::memory_order_relaxed)) {
    SleepMsInterruptible(options_.probe_interval_ms, stop_);
    if (stop_.load(std::memory_order_relaxed)) return;
    for (auto& shard : shards_) {
      ProbeOnce(*shard);
      ProbeStatus(*shard);
    }
    RefreshHelloCache();
  }
}

void Router::ProbeOnce(ShardState& shard) {
  std::string body;
  std::string error;
  int status = 0;
  obs::HttpGetOptions http_options;
  http_options.connect_timeout_ms = 500;
  http_options.read_timeout_ms = 1000;
  const bool ok =
      obs::HttpGet(shard.spec.host, shard.spec.health_port, "/healthz", &body,
                   &status, &error, http_options) &&
      status == 200;
  if (ok) {
    shard.probes_ok.fetch_add(1, std::memory_order_relaxed);
    shard.consecutive_failures = 0;
    shard.consecutive_successes += 1;
    if (!shard.up.load(std::memory_order_relaxed) &&
        shard.consecutive_successes >= options_.readmit_after) {
      shard.up.store(true, std::memory_order_relaxed);
      NEC_LOG_INFO(kComponent, "shard %s readmitted", shard.label.c_str());
    }
  } else {
    shard.probes_failed.fetch_add(1, std::memory_order_relaxed);
    shard.consecutive_successes = 0;
    shard.consecutive_failures += 1;
    if (shard.up.load(std::memory_order_relaxed) &&
        shard.consecutive_failures >= options_.eject_after) {
      shard.up.store(false, std::memory_order_relaxed);
      shard.ejections.fetch_add(1, std::memory_order_relaxed);
      NEC_LOG_WARN(kComponent, "shard %s ejected (%s)", shard.label.c_str(),
                   error.empty() ? "non-200 health" : error.c_str());
    }
  }
  // Bootstrap: before the first success/failure streak completes, the
  // very first probe decides the initial state.
  if (shard.consecutive_successes + shard.consecutive_failures == 1) {
    shard.up.store(ok, std::memory_order_relaxed);
  }
}

void Router::ProbeStatus(ShardState& shard) {
  if (!shard.up.load(std::memory_order_relaxed)) {
    if (shard.status_client != nullptr) shard.status_client->Close();
    return;
  }
  if (shard.status_client == nullptr) {
    shard.status_client = std::make_unique<NetClient>();
  }
  NetClient& client = *shard.status_client;
  std::string error;
  if (!client.connected()) {
    client.set_secret(options_.secret);
    HelloInfo info;
    if (!client.Connect(shard.spec.host, shard.spec.port,
                        options_.connect_timeout_ms, &error) ||
        !client.Hello(&info, 2000, &error)) {
      client.Close();
      return;  // redial next probe tick; /healthz decides up/down
    }
  }
  ShardStatusPayload status;
  if (!client.QueryStatus(&status, 2000, &error)) {
    client.Close();
    return;
  }
  shard.load_queue_depth.store(status.queue_depth, std::memory_order_relaxed);
  shard.load_e2e_p99_bits.store(std::bit_cast<std::uint32_t>(status.e2e_p99_ms),
                                std::memory_order_relaxed);
  shard.load_overload_total.store(status.overload_total,
                                  std::memory_order_relaxed);

  // Saturation hysteresis: saturate immediately at/above the threshold;
  // recover only after `recover_statuses` consecutive calm reports, so a
  // shard hovering at the boundary doesn't thrash.
  const bool was_saturated = shard.saturated.load(std::memory_order_relaxed);
  if (status.queue_depth >= options_.saturate_queue_depth) {
    shard.calm_statuses = 0;
    if (!was_saturated) {
      shard.saturated.store(true, std::memory_order_relaxed);
      NEC_LOG_WARN(kComponent, "shard %s saturated (queue depth %u)",
                   shard.label.c_str(),
                   static_cast<unsigned>(status.queue_depth));
    }
  } else if (was_saturated) {
    if (status.queue_depth <= options_.recover_queue_depth) {
      if (++shard.calm_statuses >= options_.recover_statuses) {
        shard.saturated.store(false, std::memory_order_relaxed);
        shard.calm_statuses = 0;
        NEC_LOG_INFO(kComponent, "shard %s recovered (queue depth %u)",
                     shard.label.c_str(),
                     static_cast<unsigned>(status.queue_depth));
      }
    } else {
      shard.calm_statuses = 0;
    }
  }
}

void Router::RefreshHelloCache() {
  {
    std::lock_guard<std::mutex> lock(hello_mutex_);
    if (hello_payload_.has_value()) return;
  }
  for (const auto& shard : shards_) {
    if (!shard->up.load(std::memory_order_relaxed)) continue;
    NetClient probe;
    probe.set_secret(options_.secret);
    std::string error;
    HelloInfo info;
    if (!probe.Connect(shard->spec.host, shard->spec.port,
                       options_.connect_timeout_ms, &error) ||
        !probe.Hello(&info, 2000, &error)) {
      continue;
    }
    std::vector<std::uint8_t> payload;
    PutU32(&payload, info.version);
    PutU32(&payload, info.input_sample_rate);
    PutU32(&payload, info.chunk_samples);
    PutU32(&payload, info.output_sample_rate);
    PutU32(&payload, info.output_samples_per_chunk);
    std::lock_guard<std::mutex> lock(hello_mutex_);
    hello_payload_ = std::move(payload);
    return;
  }
}

// ----------------------------------------------------------- poll loop

void Router::Serve() {
  struct Slot {
    std::size_t conn_index;
    /// shards_.size() means "the client fd"; otherwise the upstream index.
    std::size_t shard_index;
  };
  std::vector<struct pollfd> pfds;
  std::vector<Slot> slots;
  while (!stop_.load(std::memory_order_relaxed)) {
    pfds.clear();
    slots.clear();
    pfds.push_back({listener_.fd(), POLLIN, 0});
    slots.push_back({0, 0});
    for (std::size_t c = 0; c < connections_.size(); ++c) {
      Connection& conn = *connections_[c];
      short events = POLLIN;
      if (conn.out_off < conn.outbound.size()) events |= POLLOUT;
      pfds.push_back({conn.fd, events, 0});
      slots.push_back({c, shards_.size()});
      for (std::size_t s = 0; s < conn.upstreams.size(); ++s) {
        const Upstream& up = conn.upstreams[s];
        if (!up.connected()) continue;
        short up_events = POLLIN;
        if (up.out_off < up.outbound.size()) up_events |= POLLOUT;
        pfds.push_back({up.fd, up_events, 0});
        slots.push_back({c, s});
      }
    }
    const int pr = ::poll(pfds.data(), pfds.size(), options_.tick_ms);
    if (pr < 0 && errno != EINTR) break;

    if (pfds[0].revents & POLLIN) AcceptPending();

    bool mutated = false;
    for (std::size_t i = 1; i < pfds.size() && !mutated; ++i) {
      const short revents = pfds[i].revents;
      if (revents == 0) continue;
      Connection& conn = *connections_[slots[i].conn_index];
      if (slots[i].shard_index == shards_.size()) {
        bool alive = (revents & (POLLERR | POLLHUP | POLLNVAL)) == 0;
        if (alive && (revents & POLLIN)) alive = ReadClient(conn);
        if (!alive) {
          CloseConnection(conn, /*dropped=*/true);
          connections_.erase(connections_.begin() +
                             static_cast<std::ptrdiff_t>(slots[i].conn_index));
          mutated = true;  // pfds indices are stale; repoll
        }
      } else {
        const std::size_t s = slots[i].shard_index;
        if ((revents & (POLLERR | POLLHUP | POLLNVAL)) != 0) {
          NEC_LOG_WARN(kComponent, "upstream %s poll error (revents 0x%x)",
                       shards_[s]->label.c_str(), revents);
          FaultShardSessions(conn, s,
                             "shard " + shards_[s]->label +
                                 " connection lost");
        } else if ((revents & POLLIN) && !ReadUpstream(conn, s)) {
          NEC_LOG_WARN(kComponent, "upstream %s read failed (errno %d)",
                       shards_[s]->label.c_str(), errno);
          FaultShardSessions(conn, s,
                             "shard " + shards_[s]->label +
                                 " connection lost");
        }
      }
    }
    if (mutated) continue;

    ApplyHealthTransitions();
    PumpDrains();

    // Flush both directions; a client that went away gets reaped here.
    for (std::size_t c = 0; c < connections_.size(); ++c) {
      Connection& conn = *connections_[c];
      bool alive = FlushClient(conn);
      if (alive) {
        for (std::size_t s = 0; s < conn.upstreams.size(); ++s) {
          if (conn.upstreams[s].connected() && !FlushUpstream(conn, s)) {
            FaultShardSessions(conn, s,
                               "shard " + shards_[s]->label +
                                   " write failed");
          }
        }
      }
      if (alive && conn.close_after_write &&
          conn.out_off >= conn.outbound.size()) {
        alive = false;
      }
      if (!alive) {
        CloseConnection(conn, /*dropped=*/!conn.close_after_write);
        connections_.erase(connections_.begin() +
                           static_cast<std::ptrdiff_t>(c));
        --c;
      }
    }
  }
}

void Router::AcceptPending() {
  for (;;) {
    const int fd = listener_.Accept();
    if (fd < 0) return;
    if (connections_.size() >= options_.max_connections) {
      ::close(fd);
      continue;
    }
    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    conn->authed = options_.secret.empty();
    conn->upstreams.resize(shards_.size());
    conn->last_up.resize(shards_.size());
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      conn->last_up[s] = shards_[s]->up.load(std::memory_order_relaxed);
    }
    connections_.push_back(std::move(conn));
    stats_.AddAccepted();
  }
}

bool Router::ReadClient(Connection& conn) {
  const std::chrono::steady_clock::time_point received =
      std::chrono::steady_clock::now();
  std::uint8_t buf[64 * 1024];
  for (;;) {
    const ssize_t n = ::recv(conn.fd, buf, sizeof buf, 0);
    if (n == 0) return false;
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      return false;
    }
    stats_.AddBytesIn(static_cast<std::uint64_t>(n));
    conn.decoder.Feed(buf, static_cast<std::size_t>(n));
    if (static_cast<std::size_t>(n) < sizeof buf) break;
  }
  Frame frame;
  for (;;) {
    const DecodeStatus status = conn.decoder.Next(&frame);
    if (status == DecodeStatus::kNeedMore) return true;
    if (IsDecodeError(status)) {
      stats_.AddDecodeError();
      SendErrorToClient(
          conn, 0,
          static_cast<std::uint32_t>(runtime::ErrorCategory::kBadInput),
          std::string("malformed frame: ") + DecodeStatusName(status));
      conn.close_after_write = true;
      return true;
    }
    stats_.AddFrameIn();
    if (!HandleClientFrame(conn, std::move(frame), received)) return false;
  }
}

bool Router::HandleClientFrame(Connection& conn, Frame&& frame,
                               std::chrono::steady_clock::time_point received) {
  // Pre-auth gate: until the challenge–response completes, the only
  // frames a client may send are kHello and kAuthResponse. Anything else
  // is an unauthenticated probe and closes the connection.
  if (!conn.authed && frame.type != FrameType::kHello &&
      frame.type != FrameType::kAuthResponse) {
    RejectClientAuth(conn, std::string("unauthenticated ") +
                               FrameTypeName(frame.type) + " frame");
    return true;
  }
  switch (frame.type) {
    case FrameType::kHello: {
      PayloadReader reader(frame.payload);
      std::uint32_t min_ver = 0;
      std::uint32_t max_ver = 0;
      if (!reader.U32(&min_ver) || !reader.U32(&max_ver) ||
          !reader.complete() || min_ver > kProtocolVersion ||
          max_ver < kProtocolVersion) {
        stats_.AddProtocolError();
        SendErrorToClient(
            conn, 0,
            static_cast<std::uint32_t>(runtime::ErrorCategory::kBadInput),
            "bad hello (payload or unsupported version)");
        return true;
      }
      if (!conn.authed) {
        // Fresh nonce per challenge: a replayed tag from another
        // connection (or an earlier challenge here) never verifies.
        conn.nonce = RandomNonce();
        conn.challenged = true;
        Frame challenge;
        challenge.type = FrameType::kAuthChallenge;
        PutU64(&challenge.payload, conn.nonce);
        SendToClient(conn, challenge);
        return true;
      }
      SendHelloAck(conn);
      return true;
    }

    case FrameType::kAuthResponse: {
      if (conn.authed) {
        stats_.AddProtocolError();
        SendErrorToClient(
            conn, 0,
            static_cast<std::uint32_t>(runtime::ErrorCategory::kBadInput),
            "auth response on an authenticated connection");
        return true;
      }
      if (!conn.challenged) {
        RejectClientAuth(conn, "auth response without an outstanding challenge");
        return true;
      }
      // One verification attempt per challenge, pass or fail.
      conn.challenged = false;
      PayloadReader reader(frame.payload);
      std::uint64_t tag = 0;
      if (!reader.U64(&tag) || !reader.complete()) {
        RejectClientAuth(conn, "malformed auth response payload");
        return true;
      }
      if (tag != AuthTag(options_.secret, conn.nonce)) {
        RejectClientAuth(conn, "auth tag mismatch");
        return true;
      }
      conn.authed = true;
      stats_.AddAuthOk();
      SendHelloAck(conn);
      return true;
    }

    case FrameType::kPing: {
      Frame pong;
      pong.type = FrameType::kPong;
      pong.session_id = frame.session_id;
      pong.payload = std::move(frame.payload);
      SendToClient(conn, pong);
      return true;
    }

    case FrameType::kOpenSession: {
      auto it = conn.session_shard.find(frame.session_id);
      std::size_t shard_index;
      if (it != conn.session_shard.end()) {
        shard_index = it->second;  // duplicate open: let the shard reject
      } else {
        bool all_saturated = false;
        const auto picked = PickShard(frame.session_id, &all_saturated);
        if (!picked.has_value()) {
          // Typed shed BEFORE buffering: the client learns immediately
          // instead of its open rotting in a queue toward a shard that
          // cannot absorb it.
          if (all_saturated) {
            stats_.AddOverloadShed();
            SendErrorToClient(
                conn, frame.session_id,
                static_cast<std::uint32_t>(runtime::ErrorCategory::kOverload),
                "fleet saturated: every live shard is at capacity");
          } else {
            stats_.AddProtocolError();
            SendErrorToClient(
                conn, frame.session_id,
                static_cast<std::uint32_t>(runtime::ErrorCategory::kOverload),
                "no healthy shards");
          }
          return true;
        }
        shard_index = *picked;
        if (!EnsureUpstream(conn, shard_index)) {
          SendErrorToClient(
              conn, frame.session_id,
              static_cast<std::uint32_t>(runtime::ErrorCategory::kOverload),
              "shard " + shards_[shard_index]->label + " unreachable");
          return true;
        }
        const Upstream& up = conn.upstreams[shard_index];
        if (up.outbound.size() - up.out_off > options_.admission_backlog_bytes) {
          stats_.AddOverloadShed();
          SendErrorToClient(
              conn, frame.session_id,
              static_cast<std::uint32_t>(runtime::ErrorCategory::kOverload),
              "shard " + shards_[shard_index]->label + " backlog full");
          return true;
        }
        conn.session_shard.emplace(frame.session_id, shard_index);
        shards_[shard_index]->sessions_active.fetch_add(
            1, std::memory_order_relaxed);
        shards_[shard_index]->sessions_assigned_total.fetch_add(
            1, std::memory_order_relaxed);
        stats_.AddSessionOpened();
      }
      ForwardToShard(conn, shard_index, frame);
      return true;
    }

    case FrameType::kTraceContext: {
      // Trace metadata rides the same route as the chunk it annotates —
      // including migration parking, so replay order to the restore
      // target is preserved — but never generates errors: a context frame
      // for an unknown session is dropped silently rather than failing
      // the stream (§5g). The flow id is also stashed locally so the
      // router.forward span for the next submit joins the client's flow.
      const auto it = conn.session_shard.find(frame.session_id);
      if (it == conn.session_shard.end()) return true;
      PayloadReader reader(frame.payload);
      std::uint64_t flow = 0;
      if (reader.U64(&flow) && reader.complete() && flow != 0) {
        conn.pending_flow[frame.session_id] = flow;
      }
      const auto mig = conn.migrations.find(frame.session_id);
      if (mig != conn.migrations.end()) {
        EncodeFrame(frame, &mig->second.parked);
        return true;
      }
      ForwardToShard(conn, it->second, frame);
      return true;
    }

    case FrameType::kSubmitChunk:
    case FrameType::kCloseSession: {
      const auto it = conn.session_shard.find(frame.session_id);
      if (it == conn.session_shard.end()) {
        stats_.AddProtocolError();
        SendErrorToClient(
            conn, frame.session_id,
            static_cast<std::uint32_t>(runtime::ErrorCategory::kBadInput),
            "unknown wire session id");
        return true;
      }
      const auto mig = conn.migrations.find(frame.session_id);
      if (mig != conn.migrations.end()) {
        // Mid-reshard: park in order; flushed after the restore ack.
        // Parked bytes are bounded by the same admission guard as
        // upstream backlogs — a restore target that never acks must not
        // let a still-streaming client grow this buffer without bound.
        EncodeFrame(frame, &mig->second.parked);
        if (mig->second.parked.size() > options_.admission_backlog_bytes) {
          FaultMigration(conn, frame.session_id,
                         "reshard stalled: parked backlog full");
        }
        return true;
      }
      ForwardToShard(conn, it->second, frame);
      if (frame.type == FrameType::kSubmitChunk) {
        // router_queue hop: socket read → upstream enqueue (decode plus
        // any head-of-line wait behind earlier frames in this batch).
        runtime::HopStats::Global().Record(runtime::Hop::kRouterQueue,
                                           MsSince(received));
        obs::TraceRecorder& rec = obs::TraceRecorder::Global();
        if (rec.enabled()) {
          std::uint64_t flow = 0;
          const auto fit = conn.pending_flow.find(frame.session_id);
          if (fit != conn.pending_flow.end()) {
            flow = fit->second;
            conn.pending_flow.erase(fit);
          }
          const auto elapsed =
              std::chrono::duration_cast<std::chrono::nanoseconds>(
                  std::chrono::steady_clock::now() - received)
                  .count();
          const std::uint64_t dur_ns =
              elapsed > 0 ? static_cast<std::uint64_t>(elapsed) : 0;
          rec.RecordSpan("router.forward", "net", obs::TraceNowNs() - dur_ns,
                         dur_ns, flow, frame.session_id);
        }
      }
      return true;
    }

    default:
      stats_.AddProtocolError();
      SendErrorToClient(
          conn, frame.session_id,
          static_cast<std::uint32_t>(runtime::ErrorCategory::kBadInput),
          std::string("unexpected frame type: ") + FrameTypeName(frame.type));
      return true;
  }
}

bool Router::ReadUpstream(Connection& conn, std::size_t shard_index) {
  Upstream& up = conn.upstreams[shard_index];
  std::uint8_t buf[64 * 1024];
  for (;;) {
    const ssize_t n = ::recv(up.fd, buf, sizeof buf, 0);
    if (n == 0) return false;
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      return false;
    }
    up.decoder.Feed(buf, static_cast<std::size_t>(n));
    if (static_cast<std::size_t>(n) < sizeof buf) break;
  }
  Frame frame;
  for (;;) {
    const DecodeStatus status = up.decoder.Next(&frame);
    if (status == DecodeStatus::kNeedMore) return true;
    if (IsDecodeError(status)) {
      NEC_LOG_WARN(kComponent, "shard %s sent malformed frame: %s",
                   shards_[shard_index]->label.c_str(),
                   DecodeStatusName(status));
      return false;
    }
    // A draining shard hands the router the session's full stream state
    // once quiescent; route it to a survivor instead of the client.
    if (frame.type == FrameType::kSessionSnapshot) {
      HandleSessionSnapshot(conn, shard_index, std::move(frame));
      continue;
    }
    // The restore ack for a migrated session is router-internal — the
    // client already holds its open ack from the original placement.
    if (frame.type == FrameType::kOpenAck) {
      const auto mig = conn.migrations.find(frame.session_id);
      if (mig != conn.migrations.end() && mig->second.target == shard_index) {
        Upstream& target_up = conn.upstreams[shard_index];
        if (!target_up.has_pending() && !mig->second.parked.empty()) {
          target_up.pending_since = std::chrono::steady_clock::now();
        }
        target_up.outbound += mig->second.parked;
        shards_[mig->second.from_shard]->sessions_migrated.fetch_add(
            1, std::memory_order_relaxed);
        stats_.AddSessionMigrated();
        conn.migrations.erase(mig);
        continue;
      }
    }
    // Terminal frames release the sticky assignment.
    if (frame.session_id != 0 &&
        (frame.type == FrameType::kClosed || frame.type == FrameType::kError)) {
      if (conn.session_shard.erase(frame.session_id) > 0) {
        shards_[shard_index]->sessions_active.fetch_sub(
            1, std::memory_order_relaxed);
        if (frame.type == FrameType::kClosed) {
          stats_.AddSessionClosed();
        } else {
          stats_.AddSessionFaulted();
        }
      }
      conn.migrations.erase(frame.session_id);
      conn.pending_flow.erase(frame.session_id);
    }
    SendToClient(conn, frame);
  }
}

std::optional<std::size_t> Router::PickShard(std::uint64_t wire_sid,
                                             bool* all_saturated) const {
  if (all_saturated != nullptr) *all_saturated = false;
  if (ring_.empty()) return std::nullopt;
  const std::uint64_t h = Mix64(wire_sid);
  auto it = std::lower_bound(
      ring_.begin(), ring_.end(), std::make_pair(h, std::size_t{0}));
  bool saw_live = false;
  for (std::size_t step = 0; step < ring_.size(); ++step, ++it) {
    if (it == ring_.end()) it = ring_.begin();
    const ShardState& shard = *shards_[it->second];
    if (!shard.up.load(std::memory_order_relaxed) ||
        shard.draining.load(std::memory_order_relaxed)) {
      continue;
    }
    saw_live = true;
    if (shard.saturated.load(std::memory_order_relaxed)) continue;
    return it->second;
  }
  if (saw_live && all_saturated != nullptr) *all_saturated = true;
  return std::nullopt;
}

std::optional<std::size_t> Router::PickMigrationTarget(
    std::uint64_t wire_sid) const {
  if (auto target = PickShard(wire_sid, nullptr)) return target;
  // Every eligible shard is saturated: landing a migrating session on a
  // busy shard beats faulting it. Same clockwise walk, saturation
  // ignored.
  if (ring_.empty()) return std::nullopt;
  const std::uint64_t h = Mix64(wire_sid);
  auto it = std::lower_bound(
      ring_.begin(), ring_.end(), std::make_pair(h, std::size_t{0}));
  for (std::size_t step = 0; step < ring_.size(); ++step, ++it) {
    if (it == ring_.end()) it = ring_.begin();
    const ShardState& shard = *shards_[it->second];
    if (shard.up.load(std::memory_order_relaxed) &&
        !shard.draining.load(std::memory_order_relaxed)) {
      return it->second;
    }
  }
  return std::nullopt;
}

bool Router::EnsureUpstream(Connection& conn, std::size_t shard_index) {
  Upstream& up = conn.upstreams[shard_index];
  if (up.connected()) return true;
  const ShardSpec& spec = shards_[shard_index]->spec;
  std::string error;
  int fd = -1;
  if (options_.secret.empty()) {
    // v1 behavior: shards without a secret accept frames with no
    // handshake, so the router just dials.
    fd = DialTcp(spec.host, spec.port, options_.connect_timeout_ms, &error);
  } else {
    // The shard gates every frame behind challenge–response; run the
    // blocking handshake through a NetClient, then adopt its socket.
    NetClient handshake;
    handshake.set_secret(options_.secret);
    HelloInfo info;
    if (handshake.Connect(spec.host, spec.port, options_.connect_timeout_ms,
                          &error) &&
        handshake.Hello(&info, options_.upstream_hello_timeout_ms, &error)) {
      fd = handshake.ReleaseFd();
    }
  }
  if (fd < 0) {
    NEC_LOG_WARN(kComponent, "dial shard %s: %s",
                 shards_[shard_index]->label.c_str(), error.c_str());
    return false;
  }
  SetNonBlocking(fd, true);
  up.fd = fd;
  up.decoder.Reset();
  up.outbound.clear();
  up.out_off = 0;
  return true;
}

void Router::FaultMigration(Connection& conn, std::uint64_t wire_sid,
                            const std::string& why) {
  const auto mit = conn.migrations.find(wire_sid);
  if (mit == conn.migrations.end()) return;
  const Connection::Migration& mig = mit->second;
  // If the restore already landed on a target, close the session there
  // so the rehomed state doesn't leak on a shard the client will never
  // reach again.
  if (mig.target != Connection::Migration::kNoTarget &&
      conn.upstreams[mig.target].connected()) {
    Frame close;
    close.type = FrameType::kCloseSession;
    close.session_id = wire_sid;
    ForwardToShard(conn, mig.target, close);
  }
  SendErrorToClient(
      conn, wire_sid,
      static_cast<std::uint32_t>(runtime::ErrorCategory::kOverload), why);
  stats_.AddSessionFaulted();
  const auto sit = conn.session_shard.find(wire_sid);
  if (sit != conn.session_shard.end()) {
    // session_shard tracks whichever shard currently holds the active
    // count (source pre-snapshot, target post-restore).
    shards_[sit->second]->sessions_active.fetch_sub(
        1, std::memory_order_relaxed);
    conn.session_shard.erase(sit);
  }
  conn.migrations.erase(wire_sid);
}

void Router::FaultShardSessions(Connection& conn, std::size_t shard_index,
                                const std::string& why) {
  Upstream& up = conn.upstreams[shard_index];
  if (up.connected()) {
    ::close(up.fd);
    up.fd = -1;
    up.decoder.Reset();
    up.outbound.clear();
    up.out_off = 0;
  }
  // Every session pinned to this shard is unrecoverable: the shard-side
  // SessionManager state is gone. Same taxonomy as an in-process
  // invariant fault, one level up.
  for (auto it = conn.session_shard.begin(); it != conn.session_shard.end();) {
    if (it->second == shard_index) {
      SendErrorToClient(
          conn, it->first,
          static_cast<std::uint32_t>(runtime::ErrorCategory::kInvariant),
          why);
      stats_.AddSessionFaulted();
      shards_[shard_index]->sessions_active.fetch_sub(
          1, std::memory_order_relaxed);
      it = conn.session_shard.erase(it);
    } else {
      ++it;
    }
  }
  // Drop migrations whose session just faulted (covers both a dead
  // source mid-drain and a dead restore target).
  for (auto it = conn.migrations.begin(); it != conn.migrations.end();) {
    if (conn.session_shard.find(it->first) == conn.session_shard.end()) {
      it = conn.migrations.erase(it);
    } else {
      ++it;
    }
  }
}

// ---------------------------------------------------- draining reshard

bool Router::DrainShard(const std::string& label, std::string* error) {
  for (auto& shard : shards_) {
    if (shard->label != label) continue;
    if (!shard->draining.exchange(true, std::memory_order_relaxed)) {
      NEC_LOG_INFO(kComponent, "draining shard %s", label.c_str());
    }
    return true;
  }
  if (error != nullptr) *error = "unknown shard: " + label;
  return false;
}

void Router::PumpDrains() {
  bool any_draining = false;
  for (const auto& shard : shards_) {
    if (shard->draining.load(std::memory_order_relaxed) &&
        !shard->drained.load(std::memory_order_relaxed)) {
      any_draining = true;
      break;
    }
  }
  if (!any_draining) return;

  // Ask draining shards to quiesce + snapshot every session still
  // pinned to them. The Migration entry doubles as the "already asked"
  // marker, so this is idempotent across ticks.
  for (auto& conn : connections_) {
    for (const auto& [sid, shard_index] : conn->session_shard) {
      ShardState& shard = *shards_[shard_index];
      if (!shard.draining.load(std::memory_order_relaxed)) continue;
      if (conn->migrations.count(sid) != 0) continue;
      if (!conn->upstreams[shard_index].connected()) continue;
      Frame drain;
      drain.type = FrameType::kDrainSession;
      drain.session_id = sid;
      ForwardToShard(*conn, shard_index, drain);
      conn->migrations.emplace(
          sid, Connection::Migration{.from_shard = shard_index});
    }
  }

  // A draining shard is drained once nothing references it: no sticky
  // assignment and no in-flight migration from or onto it.
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    ShardState& shard = *shards_[s];
    if (!shard.draining.load(std::memory_order_relaxed) ||
        shard.drained.load(std::memory_order_relaxed)) {
      continue;
    }
    bool referenced = false;
    for (const auto& conn : connections_) {
      for (const auto& [sid, shard_index] : conn->session_shard) {
        if (shard_index == s) referenced = true;
      }
      for (const auto& [sid, migration] : conn->migrations) {
        if (migration.from_shard == s || migration.target == s) {
          referenced = true;
        }
      }
      if (referenced) break;
    }
    if (!referenced) {
      shard.drained.store(true, std::memory_order_relaxed);
      NEC_LOG_INFO(
          kComponent, "shard %s drained (%llu session(s) migrated)",
          shard.label.c_str(),
          static_cast<unsigned long long>(
              shard.sessions_migrated.load(std::memory_order_relaxed)));
    }
  }
}

void Router::HandleSessionSnapshot(Connection& conn, std::size_t from_shard,
                                   Frame&& frame) {
  const std::uint64_t sid = frame.session_id;
  const auto mig = conn.migrations.find(sid);
  const auto sit = conn.session_shard.find(sid);
  if (mig == conn.migrations.end() || sit == conn.session_shard.end() ||
      sit->second != from_shard ||
      mig->second.target != Connection::Migration::kNoTarget) {
    NEC_LOG_WARN(kComponent, "shard %s sent unsolicited snapshot for sid %llu",
                 shards_[from_shard]->label.c_str(),
                 static_cast<unsigned long long>(sid));
    return;
  }
  const auto target = PickMigrationTarget(sid);
  if (!target.has_value() || !EnsureUpstream(conn, *target)) {
    // No survivor can absorb the session; this is the one drain path
    // that faults, and only because the fleet has nowhere to put it.
    SendErrorToClient(
        conn, sid,
        static_cast<std::uint32_t>(runtime::ErrorCategory::kInvariant),
        "no shard available to absorb drained session");
    stats_.AddSessionFaulted();
    shards_[from_shard]->sessions_active.fetch_sub(1,
                                                   std::memory_order_relaxed);
    conn.session_shard.erase(sit);
    conn.migrations.erase(mig);
    return;
  }
  // The snapshot blob crosses verbatim: only the shards interpret it,
  // the router just rehomes it.
  Frame restore;
  restore.type = FrameType::kRestoreSession;
  restore.session_id = sid;
  restore.payload = std::move(frame.payload);
  ForwardToShard(conn, *target, restore);
  sit->second = *target;
  mig->second.target = *target;
  shards_[from_shard]->sessions_active.fetch_sub(1, std::memory_order_relaxed);
  shards_[*target]->sessions_active.fetch_add(1, std::memory_order_relaxed);
  shards_[*target]->sessions_assigned_total.fetch_add(
      1, std::memory_order_relaxed);
}

void Router::ApplyHealthTransitions() {
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    const bool up_now = shards_[s]->up.load(std::memory_order_relaxed);
    for (auto& conn : connections_) {
      if (conn->last_up[s] && !up_now) {
        FaultShardSessions(*conn, s, "shard " + shards_[s]->label +
                                         " ejected by health probe");
      }
      conn->last_up[s] = up_now;
    }
  }
}

void Router::SendToClient(Connection& conn, const Frame& frame) {
  EncodeFrame(frame, &conn.outbound);
  stats_.AddFrameOut();
}

void Router::RejectClientAuth(Connection& conn, const std::string& message) {
  stats_.AddAuthRejected();
  NEC_LOG_WARN(kComponent, "auth reject fd %d: %s", conn.fd, message.c_str());
  Frame frame;
  frame.type = FrameType::kAuthReject;
  frame.session_id = 0;
  PutU32(&frame.payload, static_cast<std::uint32_t>(
                             runtime::ErrorCategory::kAuthRejected));
  frame.payload.insert(frame.payload.end(), message.begin(), message.end());
  SendToClient(conn, frame);
  conn.close_after_write = true;
}

void Router::SendHelloAck(Connection& conn) {
  std::optional<std::vector<std::uint8_t>> cached;
  {
    std::lock_guard<std::mutex> lock(hello_mutex_);
    cached = hello_payload_;
  }
  if (!cached.has_value()) {
    // No shard has ever answered; the fleet is effectively down.
    stats_.AddProtocolError();
    SendErrorToClient(
        conn, 0,
        static_cast<std::uint32_t>(runtime::ErrorCategory::kOverload),
        "no healthy shards");
    return;
  }
  Frame ack;
  ack.type = FrameType::kHelloAck;
  ack.payload = std::move(*cached);
  SendToClient(conn, ack);
}

void Router::SendErrorToClient(Connection& conn, std::uint64_t wire_sid,
                               std::uint32_t category,
                               const std::string& message) {
  Frame frame;
  frame.type = FrameType::kError;
  frame.session_id = wire_sid;
  PutU32(&frame.payload, category);
  frame.payload.insert(frame.payload.end(), message.begin(), message.end());
  SendToClient(conn, frame);
}

namespace {

/// Shared nonblocking-flush helper for both directions.
bool FlushBuffer(int fd, std::string* buffer, std::size_t* offset,
                 std::uint64_t* bytes_out) {
  while (*offset < buffer->size()) {
    const ssize_t n = ::send(fd, buffer->data() + *offset,
                             buffer->size() - *offset,
#if defined(MSG_NOSIGNAL)
                             MSG_NOSIGNAL
#else
                             0
#endif
    );
    if (n > 0) {
      *offset += static_cast<std::size_t>(n);
      if (bytes_out != nullptr) *bytes_out += static_cast<std::uint64_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    return false;
  }
  if (*offset == buffer->size()) {
    buffer->clear();
    *offset = 0;
  } else if (*offset > (1u << 20)) {
    buffer->erase(0, *offset);
    *offset = 0;
  }
  return true;
}

}  // namespace

bool Router::FlushClient(Connection& conn) {
  std::uint64_t bytes = 0;
  const bool ok = FlushBuffer(conn.fd, &conn.outbound, &conn.out_off, &bytes);
  if (bytes > 0) stats_.AddBytesOut(bytes);
  if (!ok) return false;
  if (conn.outbound.size() - conn.out_off > options_.max_outbound_bytes) {
    NEC_LOG_WARN(kComponent,
                 "dropping client fd %d: not reading (%zu bytes pending)",
                 conn.fd, conn.outbound.size() - conn.out_off);
    return false;
  }
  return true;
}

void Router::ForwardToShard(Connection& conn, std::size_t shard_index,
                            const Frame& frame) {
  Upstream& up = conn.upstreams[shard_index];
  if (!up.has_pending()) up.pending_since = std::chrono::steady_clock::now();
  EncodeFrame(frame, &up.outbound);
}

bool Router::FlushUpstream(Connection& conn, std::size_t shard_index) {
  Upstream& up = conn.upstreams[shard_index];
  const bool had_pending = up.has_pending();
  if (!FlushBuffer(up.fd, &up.outbound, &up.out_off, nullptr)) return false;
  if (had_pending && !up.has_pending()) {
    // upstream_write hop: oldest enqueued byte → buffer fully drained to
    // the shard socket. Grows under write-side backpressure.
    runtime::HopStats::Global().Record(runtime::Hop::kUpstreamWrite,
                                       MsSince(up.pending_since));
  }
  return up.outbound.size() - up.out_off <= options_.max_outbound_bytes;
}

void Router::CloseConnection(Connection& conn, bool dropped) {
  if (conn.fd < 0) return;
  ::close(conn.fd);
  conn.fd = -1;
  for (Upstream& up : conn.upstreams) {
    if (up.connected()) {
      ::close(up.fd);
      up.fd = -1;
    }
  }
  stats_.AddClosed(dropped);
}

std::vector<RouterShardStatus> Router::ShardStatuses() const {
  std::vector<RouterShardStatus> statuses;
  statuses.reserve(shards_.size());
  for (const auto& shard : shards_) {
    RouterShardStatus status;
    status.spec = shard->spec;
    status.up = shard->up.load(std::memory_order_relaxed);
    status.saturated = shard->saturated.load(std::memory_order_relaxed);
    status.draining = shard->draining.load(std::memory_order_relaxed);
    status.drained = shard->drained.load(std::memory_order_relaxed);
    status.sessions_active =
        shard->sessions_active.load(std::memory_order_relaxed);
    status.sessions_assigned_total =
        shard->sessions_assigned_total.load(std::memory_order_relaxed);
    status.sessions_migrated =
        shard->sessions_migrated.load(std::memory_order_relaxed);
    status.ejections = shard->ejections.load(std::memory_order_relaxed);
    status.probes_ok = shard->probes_ok.load(std::memory_order_relaxed);
    status.probes_failed =
        shard->probes_failed.load(std::memory_order_relaxed);
    status.queue_depth =
        shard->load_queue_depth.load(std::memory_order_relaxed);
    status.e2e_p99_ms = std::bit_cast<float>(
        shard->load_e2e_p99_bits.load(std::memory_order_relaxed));
    status.overload_total =
        shard->load_overload_total.load(std::memory_order_relaxed);
    statuses.push_back(std::move(status));
  }
  return statuses;
}

std::vector<obs::MetricFamily> Router::MetricFamilies() const {
  auto families = NetStatsToMetricFamilies(StatsSnapshot(), "router");
  auto add = [&](const char* name, const char* help, obs::MetricType type,
                 auto value_of) {
    obs::MetricFamily family;
    family.name = name;
    family.help = help;
    family.type = type;
    for (const auto& shard : shards_) {
      obs::Metric metric;
      metric.labels.emplace_back("shard", shard->label);
      metric.value = value_of(*shard);
      family.metrics.push_back(std::move(metric));
    }
    families.push_back(std::move(family));
  };
  using obs::MetricType;
  add("nec_router_shard_up", "1 when the shard is in the ring",
      MetricType::kGauge, [](const ShardState& s) {
        return s.up.load(std::memory_order_relaxed) ? 1.0 : 0.0;
      });
  add("nec_router_shard_sessions", "sticky sessions currently on the shard",
      MetricType::kGauge, [](const ShardState& s) {
        return static_cast<double>(
            s.sessions_active.load(std::memory_order_relaxed));
      });
  add("nec_router_shard_sessions_assigned_total",
      "sessions ever placed on the shard", MetricType::kCounter,
      [](const ShardState& s) {
        return static_cast<double>(
            s.sessions_assigned_total.load(std::memory_order_relaxed));
      });
  add("nec_router_shard_ejections_total",
      "times the health prober removed the shard", MetricType::kCounter,
      [](const ShardState& s) {
        return static_cast<double>(
            s.ejections.load(std::memory_order_relaxed));
      });
  add("nec_router_shard_probes_failed_total", "failed health probes",
      MetricType::kCounter, [](const ShardState& s) {
        return static_cast<double>(
            s.probes_failed.load(std::memory_order_relaxed));
      });
  add("nec_router_shard_saturated",
      "1 while admission control sheds new sessions from the shard",
      MetricType::kGauge, [](const ShardState& s) {
        return s.saturated.load(std::memory_order_relaxed) ? 1.0 : 0.0;
      });
  add("nec_router_shard_draining", "1 while a draining reshard is underway",
      MetricType::kGauge, [](const ShardState& s) {
        return s.draining.load(std::memory_order_relaxed) ? 1.0 : 0.0;
      });
  add("nec_router_shard_drained",
      "1 once a drain finished with zero sessions left", MetricType::kGauge,
      [](const ShardState& s) {
        return s.drained.load(std::memory_order_relaxed) ? 1.0 : 0.0;
      });
  add("nec_router_shard_queue_depth",
      "work-queue depth from the shard's last load report",
      MetricType::kGauge, [](const ShardState& s) {
        return static_cast<double>(
            s.load_queue_depth.load(std::memory_order_relaxed));
      });
  add("nec_router_shard_sessions_migrated_total",
      "sessions moved off the shard by draining reshards",
      MetricType::kCounter, [](const ShardState& s) {
        return static_cast<double>(
            s.sessions_migrated.load(std::memory_order_relaxed));
      });
  return families;
}

}  // namespace nec::net
