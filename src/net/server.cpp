#include "net/server.h"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <bit>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

#include "net/auth.h"
#include "obs/log.h"
#include "obs/trace.h"
#include "runtime/stats.h"
#include "synth/dataset.h"

namespace nec::net {
namespace {

constexpr const char* kComponent = "net.server";

std::uint64_t NowMs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

/// One wire session living on a connection. `id` is the SessionManager
/// session backing the wire id; lifecycle flags drive the per-tick pump.
struct NetServer::WireSession {
  std::uint64_t wire_sid = 0;
  runtime::SessionManager::SessionId id = 0;
  /// Enrollment seeds, kept so a draining reshard can re-enroll the
  /// session deterministically on another shard.
  std::uint64_t speaker_seed = 0;
  std::uint64_t ref_seed = 0;
  bool closing = false;   ///< client sent kCloseSession; flush when idle
  bool nudge = false;     ///< a Submit bounced with kOverload; retry empty
  bool draining = false;  ///< router asked for a migration snapshot
  /// Wire-carried trace flow id (kTraceContext) awaiting the next
  /// kSubmitChunk of this wire session (DESIGN.md §5g).
  std::uint64_t pending_flow = 0;
  /// Flow id of the most recently submitted traced chunk; tags the next
  /// kShadowData reply span so the flow reaches the reply hop.
  std::uint64_t reply_flow = 0;
};

struct NetServer::Connection {
  int fd = -1;
  FrameDecoder decoder;
  std::string outbound;       ///< encoded frames not yet written
  std::size_t out_off = 0;    ///< written prefix of outbound
  std::uint64_t last_activity_ms = 0;
  bool close_after_write = false;  ///< fatal error already queued
  bool authed = false;        ///< v2 handshake passed (or auth disabled)
  bool challenged = false;    ///< a nonce is outstanding
  std::uint64_t nonce = 0;    ///< per-connection challenge nonce
  std::vector<WireSession> sessions;

  WireSession* Find(std::uint64_t wire_sid) {
    for (WireSession& s : sessions) {
      if (s.wire_sid == wire_sid) return &s;
    }
    return nullptr;
  }
};

NetServer::NetServer(runtime::SessionManager* manager, Options options)
    : manager_(manager), options_(std::move(options)) {}

NetServer::~NetServer() { Stop(); }

bool NetServer::Start(std::string* error) {
  IgnoreSigpipe();
  if (!listener_.Listen(options_.host, options_.port, error)) return false;
  port_ = listener_.port();
  stop_.store(false, std::memory_order_relaxed);
  thread_ = std::thread([this] { Serve(); });
  NEC_LOG_INFO(kComponent, "wire protocol listening on %s:%d",
               options_.host.c_str(), port_);
  return true;
}

void NetServer::Stop() {
  if (!thread_.joinable()) return;
  stop_.store(true, std::memory_order_relaxed);
  thread_.join();
  for (auto& conn : connections_) CloseConnection(*conn, /*dropped=*/true);
  connections_.clear();
  listener_.Close();
}

void NetServer::Serve() {
  std::vector<struct pollfd> pfds;
  while (!stop_.load(std::memory_order_relaxed)) {
    pfds.clear();
    pfds.push_back({listener_.fd(), POLLIN, 0});
    for (const auto& conn : connections_) {
      short events = POLLIN;
      if (conn->out_off < conn->outbound.size()) events |= POLLOUT;
      pfds.push_back({conn->fd, events, 0});
    }
    const int pr = ::poll(pfds.data(), pfds.size(), options_.tick_ms);
    if (pr < 0 && errno != EINTR) break;

    // Connections accepted now were not in this poll set — only the
    // first `polled` entries of connections_ have a matching pfds slot.
    // Indexing pfds past that reads garbage revents and kills healthy
    // brand-new connections.
    const std::size_t polled = pfds.size() - 1;
    if (pfds[0].revents & POLLIN) AcceptPending();

    const std::uint64_t now = NowMs();
    // Iterate by index: HandleFrame never mutates connections_.
    for (std::size_t i = 0; i < polled; ++i) {
      Connection& conn = *connections_[i];
      const short revents = pfds[i + 1].revents;
      bool alive = true;
      if (revents & (POLLERR | POLLHUP | POLLNVAL)) {
        alive = false;
      }
      if (alive && (revents & POLLIN)) {
        alive = ReadAndDispatch(conn);
        if (alive) conn.last_activity_ms = now;
      }
      if (alive) PumpSessions(conn);
      if (alive) alive = FlushOutbound(conn);
      if (alive && conn.close_after_write &&
          conn.out_off >= conn.outbound.size()) {
        alive = false;
      }
      if (alive && conn.sessions.empty() && options_.idle_timeout_ms > 0 &&
          now - conn.last_activity_ms >
              static_cast<std::uint64_t>(options_.idle_timeout_ms)) {
        NEC_LOG_WARN(kComponent, "dropping idle connection (fd %d)",
                     conn.fd);
        alive = false;
      }
      if (!alive) {
        CloseConnection(conn, /*dropped=*/!conn.close_after_write ||
                                  conn.out_off < conn.outbound.size());
        connections_.erase(connections_.begin() +
                           static_cast<std::ptrdiff_t>(i));
        --i;
        // pfds is stale past this point for erased indices; the next loop
        // iteration uses i+1 offsets that no longer line up, so rebuild by
        // breaking out to the outer poll.
        break;
      }
    }
  }
}

void NetServer::AcceptPending() {
  for (;;) {
    const int fd = listener_.Accept();
    if (fd < 0) return;
    if (connections_.size() >= options_.max_connections) {
      ::close(fd);
      continue;
    }
    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    conn->authed = options_.secret.empty();
    conn->last_activity_ms = NowMs();
    connections_.push_back(std::move(conn));
    stats_.AddAccepted();
  }
}

bool NetServer::ReadAndDispatch(Connection& conn) {
  std::uint8_t buf[64 * 1024];
  for (;;) {
    const ssize_t n = ::recv(conn.fd, buf, sizeof buf, 0);
    if (n == 0) return false;  // orderly close
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      return false;
    }
    stats_.AddBytesIn(static_cast<std::uint64_t>(n));
    conn.decoder.Feed(buf, static_cast<std::size_t>(n));
    if (static_cast<std::size_t>(n) < sizeof buf) break;
  }

  Frame frame;
  for (;;) {
    const DecodeStatus status = conn.decoder.Next(&frame);
    if (status == DecodeStatus::kNeedMore) return true;
    if (IsDecodeError(status)) {
      // Malformed framing maps onto the runtime's kBadInput taxonomy:
      // tell the peer what broke, then hang up (the stream is
      // untrustworthy once framing lied).
      stats_.AddDecodeError();
      NEC_LOG_WARN(kComponent, "decode error on fd %d: %s", conn.fd,
                   DecodeStatusName(status));
      SendError(conn, 0, runtime::ErrorCategory::kBadInput,
                std::string("malformed frame: ") + DecodeStatusName(status));
      conn.close_after_write = true;
      return true;
    }
    stats_.AddFrameIn();
    if (!HandleFrame(conn, std::move(frame))) return false;
  }
}

bool NetServer::HandleFrame(Connection& conn, Frame&& frame) {
  // Pre-auth gate: until the handshake completes, the only acceptable
  // frames are kHello and kAuthResponse — an unauthenticated peer cannot
  // enroll, submit, or even ping (the paper's threat model makes this
  // service the trusted party; an open enrollment path invites flooding).
  if (!conn.authed && frame.type != FrameType::kHello &&
      frame.type != FrameType::kAuthResponse) {
    RejectAuth(conn, std::string("unauthenticated ") +
                         FrameTypeName(frame.type) + " frame");
    return true;
  }
  switch (frame.type) {
    case FrameType::kHello: {
      PayloadReader reader(frame.payload);
      std::uint32_t min_ver = 0;
      std::uint32_t max_ver = 0;
      if (!reader.U32(&min_ver) || !reader.U32(&max_ver) ||
          !reader.complete()) {
        stats_.AddProtocolError();
        SendError(conn, 0, runtime::ErrorCategory::kBadInput,
                  "bad hello payload");
        return true;
      }
      if (min_ver > kProtocolVersion || max_ver < kProtocolVersion) {
        stats_.AddProtocolError();
        SendError(conn, 0, runtime::ErrorCategory::kBadInput,
                  "unsupported protocol version");
        conn.close_after_write = true;
        return true;
      }
      if (!conn.authed) {
        // Secret configured and not yet proven: challenge instead of
        // acking. Every hello gets a FRESH nonce, so a tag observed on
        // one connection (or an earlier hello) never verifies again —
        // that is the whole replay defense.
        conn.nonce = RandomNonce();
        conn.challenged = true;
        Frame challenge;
        challenge.type = FrameType::kAuthChallenge;
        PutU64(&challenge.payload, conn.nonce);
        SendFrame(conn, challenge);
        return true;
      }
      const std::uint32_t chunk = static_cast<std::uint32_t>(
          manager_->chunk_samples());
      Frame ack;
      ack.type = FrameType::kHelloAck;
      PutU32(&ack.payload, kProtocolVersion);
      PutU32(&ack.payload,
             static_cast<std::uint32_t>(options_.input_sample_rate));
      PutU32(&ack.payload, chunk);
      PutU32(&ack.payload,
             static_cast<std::uint32_t>(options_.output_sample_rate));
      PutU32(&ack.payload,
             static_cast<std::uint32_t>(
                 static_cast<std::uint64_t>(chunk) *
                 static_cast<std::uint64_t>(options_.output_sample_rate) /
                 static_cast<std::uint64_t>(options_.input_sample_rate)));
      SendFrame(conn, ack);
      return true;
    }

    case FrameType::kAuthResponse: {
      if (conn.authed) {
        stats_.AddProtocolError();
        SendError(conn, 0, runtime::ErrorCategory::kBadInput,
                  "auth response on an authenticated connection");
        return true;
      }
      if (!conn.challenged) {
        RejectAuth(conn, "auth response without an outstanding challenge");
        return true;
      }
      PayloadReader reader(frame.payload);
      std::uint64_t tag = 0;
      if (!reader.U64(&tag) || !reader.complete()) {
        RejectAuth(conn, "bad auth response payload");
        return true;
      }
      // One verification per nonce: consumed pass or fail, so a brute
      // force cannot iterate tags against a single challenge.
      conn.challenged = false;
      const std::uint64_t want = AuthTag(options_.secret, conn.nonce);
      if (tag != want) {
        RejectAuth(conn, "auth tag mismatch");
        return true;
      }
      conn.authed = true;
      stats_.AddAuthOk();
      // Complete the hello the challenge interrupted.
      const std::uint32_t chunk = static_cast<std::uint32_t>(
          manager_->chunk_samples());
      Frame ack;
      ack.type = FrameType::kHelloAck;
      PutU32(&ack.payload, kProtocolVersion);
      PutU32(&ack.payload,
             static_cast<std::uint32_t>(options_.input_sample_rate));
      PutU32(&ack.payload, chunk);
      PutU32(&ack.payload,
             static_cast<std::uint32_t>(options_.output_sample_rate));
      PutU32(&ack.payload,
             static_cast<std::uint32_t>(
                 static_cast<std::uint64_t>(chunk) *
                 static_cast<std::uint64_t>(options_.output_sample_rate) /
                 static_cast<std::uint64_t>(options_.input_sample_rate)));
      SendFrame(conn, ack);
      return true;
    }

    case FrameType::kOpenSession: {
      PayloadReader reader(frame.payload);
      std::uint64_t speaker_seed = 0;
      std::uint64_t ref_seed = 0;
      if (!reader.U64(&speaker_seed) || !reader.U64(&ref_seed) ||
          !reader.complete()) {
        stats_.AddProtocolError();
        SendError(conn, frame.session_id,
                  runtime::ErrorCategory::kBadInput,
                  "bad open_session payload");
        return true;
      }
      if (conn.Find(frame.session_id) != nullptr) {
        stats_.AddProtocolError();
        SendError(conn, frame.session_id,
                  runtime::ErrorCategory::kBadInput,
                  "wire session id already open");
        return true;
      }
      // Deterministic seed-based enrollment: same seeds + same weights
      // give the same enrolled session on every shard.
      synth::DatasetBuilder enroll_builder(
          {.duration_s = options_.enroll_seconds});
      const auto refs = enroll_builder.MakeReferenceAudios(
          synth::SpeakerProfile::FromSeed(speaker_seed),
          options_.enroll_refs, ref_seed);
      WireSession session;
      session.wire_sid = frame.session_id;
      session.id = manager_->CreateSession(refs);
      session.speaker_seed = speaker_seed;
      session.ref_seed = ref_seed;
      conn.sessions.push_back(session);
      stats_.AddSessionOpened();
      Frame ack;
      ack.type = FrameType::kOpenAck;
      ack.session_id = frame.session_id;
      SendFrame(conn, ack);
      return true;
    }

    case FrameType::kSubmitChunk: {
      WireSession* session = conn.Find(frame.session_id);
      if (session == nullptr || session->closing) {
        stats_.AddProtocolError();
        SendError(conn, frame.session_id,
                  runtime::ErrorCategory::kBadInput,
                  session == nullptr ? "unknown wire session id"
                                     : "session is closing");
        return true;
      }
      PayloadReader reader(frame.payload);
      std::vector<float> samples;
      if (!reader.Floats(&samples)) {
        stats_.AddProtocolError();
        SendError(conn, frame.session_id,
                  runtime::ErrorCategory::kBadInput,
                  "submit payload not a float32 array");
        return true;
      }
      const std::uint64_t flow = session->pending_flow;
      session->pending_flow = 0;
      if (flow != 0) session->reply_flow = flow;
      const runtime::SubmitResult r =
          manager_->Submit(session->id, samples, flow);
      if (!r.ok()) {
        if (r.error->category == runtime::ErrorCategory::kOverload) {
          // Samples ARE buffered; retry the dispatch with empty submits
          // from the tick loop until the pool admits it.
          session->nudge = true;
        } else {
          // Typed rejection (bad input) or a faulted session: surface it
          // and, for faults, retire the wire session.
          SendError(conn, frame.session_id, r.error->category,
                    r.error->message);
          if (r.error->category != runtime::ErrorCategory::kBadInput) {
            stats_.AddSessionFaulted();
            conn.sessions.erase(
                conn.sessions.begin() + (session - conn.sessions.data()));
          }
        }
      }
      return true;
    }

    case FrameType::kCloseSession: {
      WireSession* session = conn.Find(frame.session_id);
      if (session == nullptr) {
        stats_.AddProtocolError();
        SendError(conn, frame.session_id,
                  runtime::ErrorCategory::kBadInput,
                  "unknown wire session id");
        return true;
      }
      session->closing = true;
      return true;
    }

    case FrameType::kTraceContext: {
      // Pure metadata (DESIGN.md §5g): stash the sender's flow id for the
      // next kSubmitChunk of this wire session. Never an error — a
      // context frame for an unknown/closing session (chunk raced a
      // close) or a malformed payload is dropped silently, because trace
      // plumbing must not change processing semantics.
      WireSession* session = conn.Find(frame.session_id);
      PayloadReader reader(frame.payload);
      std::uint64_t flow = 0;
      if (session != nullptr && reader.U64(&flow) && reader.complete()) {
        session->pending_flow = flow;
      }
      return true;
    }

    case FrameType::kPing: {
      Frame pong;
      pong.type = FrameType::kPong;
      pong.session_id = frame.session_id;
      pong.payload = std::move(frame.payload);
      SendFrame(conn, pong);
      return true;
    }

    case FrameType::kStatusRequest: {
      SendShardStatus(conn);
      return true;
    }

    case FrameType::kDrainSession: {
      WireSession* session = conn.Find(frame.session_id);
      if (session == nullptr) {
        // Benign race: the session finished (kClosed/kError in flight
        // toward the router) before the drain request landed. The
        // terminal frame already releases the router's sticky state, so
        // there is nothing to move.
        return true;
      }
      // The router has stopped forwarding this session's frames; once
      // everything in flight completes, PumpSessions exports a snapshot.
      session->draining = true;
      return true;
    }

    case FrameType::kRestoreSession: {
      SessionSnapshotPayload snap;
      if (!ParseSessionSnapshot(frame.payload, &snap)) {
        stats_.AddProtocolError();
        SendError(conn, frame.session_id,
                  runtime::ErrorCategory::kBadInput,
                  "bad restore_session payload");
        return true;
      }
      if (conn.Find(frame.session_id) != nullptr) {
        stats_.AddProtocolError();
        SendError(conn, frame.session_id,
                  runtime::ErrorCategory::kBadInput,
                  "wire session id already open");
        return true;
      }
      // Re-enroll deterministically from the migrated seeds (same weights
      // + same seeds = the same enrolled session the draining shard had),
      // then install the mid-stream state — partial tail and modulation
      // latch — so continuation is bit-identical.
      synth::DatasetBuilder enroll_builder(
          {.duration_s = options_.enroll_seconds});
      const auto refs = enroll_builder.MakeReferenceAudios(
          synth::SpeakerProfile::FromSeed(snap.speaker_seed),
          options_.enroll_refs, snap.ref_seed);
      WireSession session;
      session.wire_sid = frame.session_id;
      session.id = manager_->CreateSession(refs);
      session.speaker_seed = snap.speaker_seed;
      session.ref_seed = snap.ref_seed;
      manager_->RestoreSession(
          session.id,
          runtime::SessionSnapshot{
              .tail = std::move(snap.tail),
              .mod_reference_peak = std::bit_cast<double>(snap.latch_bits),
              .chunks_emitted = snap.chunks_done});
      conn.sessions.push_back(session);
      stats_.AddSessionOpened();
      Frame ack;
      ack.type = FrameType::kOpenAck;
      ack.session_id = frame.session_id;
      SendFrame(conn, ack);
      return true;
    }

    default:
      // Server-to-client types arriving at the server are protocol abuse.
      stats_.AddProtocolError();
      SendError(conn, frame.session_id, runtime::ErrorCategory::kBadInput,
                std::string("unexpected frame type: ") +
                    FrameTypeName(frame.type));
      return true;
  }
}

void NetServer::PumpSessions(Connection& conn) {
  for (std::size_t i = 0; i < conn.sessions.size(); ++i) {
    WireSession& session = conn.sessions[i];
    if (session.nudge) {
      const runtime::SubmitResult r = manager_->Submit(session.id, {});
      if (r.ok()) {
        session.nudge = false;
      } else if (r.error->category != runtime::ErrorCategory::kOverload) {
        session.nudge = false;  // fault path below reports it
      }
    }

    const runtime::SessionStatus status =
        manager_->SessionStatus(session.id);
    if (status.state == runtime::SessionState::kFaulted) {
      const runtime::SessionError error =
          status.error.value_or(runtime::SessionError{
              runtime::ErrorCategory::kInvariant, "session faulted"});
      SendError(conn, session.wire_sid, error.category, error.message);
      stats_.AddSessionFaulted();
      conn.sessions.erase(conn.sessions.begin() +
                          static_cast<std::ptrdiff_t>(i));
      --i;
      continue;
    }

    std::chrono::steady_clock::time_point produced_since{};
    audio::Waveform out = manager_->TakeOutput(session.id, &produced_since);
    if (out.size() > 0) {
      // Reply hop (§5g): oldest produced-but-undelivered sample → now,
      // i.e. how long finished shadow waited for this tick's encode.
      runtime::HopStats::Global().Record(
          runtime::Hop::kReply,
          std::chrono::duration<double, std::milli>(
              std::chrono::steady_clock::now() - produced_since)
              .count());
    }

    if (session.draining && !session.closing) {
      // Migration: deliver whatever shadow already completed, then — once
      // every in-flight chunk has finished (strand parked, inbox empty,
      // batcher lane idle) — export the mid-stream state and retire the
      // wire session. The partial tail is NOT flushed: it travels in the
      // snapshot and completes on the destination shard.
      if (out.size() > 0) {
        Frame data;
        data.type = FrameType::kShadowData;
        data.session_id = session.wire_sid;
        PutFloats(&data.payload, out.samples());
        SendFrame(conn, data);
      }
      if (session.nudge || !manager_->SessionQuiescent(session.id)) {
        continue;  // still settling; try again next tick
      }
      if (auto snap = manager_->ExportSession(session.id)) {
        SessionSnapshotPayload payload;
        payload.speaker_seed = session.speaker_seed;
        payload.ref_seed = session.ref_seed;
        payload.chunks_done = snap->chunks_emitted;
        payload.latch_bits =
            std::bit_cast<std::uint64_t>(snap->mod_reference_peak);
        payload.tail = std::move(snap->tail);
        Frame snapshot;
        snapshot.type = FrameType::kSessionSnapshot;
        snapshot.session_id = session.wire_sid;
        PutSessionSnapshot(&snapshot.payload, payload);
        SendFrame(conn, snapshot);
        // Reclaim the backing session: reuse buffers reset, modulation
        // latch cleared. Migrated, not closed and not faulted.
        manager_->ResetSession(session.id);
        stats_.AddSessionMigrated();
        conn.sessions.erase(conn.sessions.begin() +
                            static_cast<std::ptrdiff_t>(i));
        --i;
      }
      // nullopt = the session faulted at the last moment; the fault path
      // above reports it on the next tick.
      continue;
    }

    const bool finish = session.closing &&
                        status.state == runtime::SessionState::kIdle;
    if (finish) {
      // The strand is parked and no Submit can race (only this thread
      // submits): flush the partial tail, if any, into the same burst.
      if (auto tail = manager_->Flush(session.id)) out.Append(*tail);
    }
    if (out.size() > 0) {
      obs::TraceRecorder& rec = obs::TraceRecorder::Global();
      const std::uint64_t t0_ns = rec.enabled() ? obs::TraceNowNs() : 0;
      Frame data;
      data.type = FrameType::kShadowData;
      data.session_id = session.wire_sid;
      PutFloats(&data.payload, out.samples());
      SendFrame(conn, data);
      if (t0_ns != 0) {
        // Reply span, tagged with the last traced chunk's flow so the
        // merged fleet trace reaches client-submit → shard-compute →
        // reply on one id.
        rec.RecordSpan("shard.reply", "net", t0_ns,
                       obs::TraceNowNs() - t0_ns,
                       std::exchange(session.reply_flow, 0),
                       session.wire_sid);
      }
    }
    if (finish) {
      Frame closed;
      closed.type = FrameType::kClosed;
      closed.session_id = session.wire_sid;
      SendFrame(conn, closed);
      stats_.AddSessionClosed();
      conn.sessions.erase(conn.sessions.begin() +
                          static_cast<std::ptrdiff_t>(i));
      --i;
    }
  }
}

void NetServer::SendFrame(Connection& conn, const Frame& frame) {
  EncodeFrame(frame, &conn.outbound);
  stats_.AddFrameOut();
}

void NetServer::SendError(Connection& conn, std::uint64_t wire_sid,
                          runtime::ErrorCategory category,
                          const std::string& message) {
  Frame frame;
  frame.type = FrameType::kError;
  frame.session_id = wire_sid;
  PutU32(&frame.payload, static_cast<std::uint32_t>(category));
  frame.payload.insert(frame.payload.end(), message.begin(), message.end());
  SendFrame(conn, frame);
}

void NetServer::RejectAuth(Connection& conn, const std::string& message) {
  stats_.AddAuthRejected();
  NEC_LOG_WARN(kComponent, "auth rejected on fd %d: %s", conn.fd,
               message.c_str());
  Frame frame;
  frame.type = FrameType::kAuthReject;
  PutU32(&frame.payload, static_cast<std::uint32_t>(
                             runtime::ErrorCategory::kAuthRejected));
  frame.payload.insert(frame.payload.end(), message.begin(), message.end());
  SendFrame(conn, frame);
  conn.close_after_write = true;
}

void NetServer::SendShardStatus(Connection& conn) {
  const runtime::RuntimeStatsSnapshot rs = manager_->Stats();
  ShardStatusPayload status;
  status.queue_depth = static_cast<std::uint32_t>(rs.queue_depth);
  const std::int64_t forced =
      status_depth_override_.load(std::memory_order_relaxed);
  if (forced >= 0) status.queue_depth = static_cast<std::uint32_t>(forced);
  std::uint64_t active = 0;
  for (const auto& c : connections_) active += c->sessions.size();
  status.active_sessions = static_cast<std::uint32_t>(active);
  status.e2e_p99_ms = static_cast<float>(rs.e2e_latency.p99_ms);
  status.overload_total = rs.dispatch_rejections;
  Frame frame;
  frame.type = FrameType::kShardStatus;
  PutShardStatus(&frame.payload, status);
  SendFrame(conn, frame);
}

bool NetServer::FlushOutbound(Connection& conn) {
  while (conn.out_off < conn.outbound.size()) {
    const ssize_t n = ::send(conn.fd, conn.outbound.data() + conn.out_off,
                             conn.outbound.size() - conn.out_off,
#if defined(MSG_NOSIGNAL)
                             MSG_NOSIGNAL
#else
                             0
#endif
    );
    if (n > 0) {
      conn.out_off += static_cast<std::size_t>(n);
      stats_.AddBytesOut(static_cast<std::uint64_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    return false;  // peer gone mid-write
  }
  if (conn.out_off == conn.outbound.size()) {
    conn.outbound.clear();
    conn.out_off = 0;
  } else if (conn.out_off > (1u << 20)) {
    conn.outbound.erase(0, conn.out_off);
    conn.out_off = 0;
  }
  if (conn.outbound.size() - conn.out_off > options_.max_outbound_bytes) {
    NEC_LOG_WARN(kComponent,
                 "dropping connection fd %d: peer not reading (%zu bytes "
                 "pending)",
                 conn.fd, conn.outbound.size() - conn.out_off);
    return false;
  }
  return true;
}

void NetServer::CloseConnection(Connection& conn, bool dropped) {
  if (conn.fd < 0) return;
  ::close(conn.fd);
  conn.fd = -1;
  stats_.AddClosed(dropped);
}

}  // namespace nec::net
