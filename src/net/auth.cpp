#include "net/auth.h"

#include <atomic>
#include <cstring>
#include <random>

namespace nec::net {
namespace {

inline std::uint64_t Rotl(std::uint64_t x, int b) {
  return (x << b) | (x >> (64 - b));
}

inline void SipRound(std::uint64_t& v0, std::uint64_t& v1, std::uint64_t& v2,
                     std::uint64_t& v3) {
  v0 += v1;
  v1 = Rotl(v1, 13);
  v1 ^= v0;
  v0 = Rotl(v0, 32);
  v2 += v3;
  v3 = Rotl(v3, 16);
  v3 ^= v2;
  v0 += v3;
  v3 = Rotl(v3, 21);
  v3 ^= v0;
  v2 += v1;
  v1 = Rotl(v1, 17);
  v1 ^= v2;
  v2 = Rotl(v2, 32);
}

/// FNV-1a over secret || domain. Folding a per-key domain suffix INTO
/// the hash (rather than starting k0/k1 from different bases) keeps the
/// two digests from being related by a constant pre-finalizer delta —
/// the suffix bytes mix through multiply-xor rounds that depend on the
/// whole secret state.
std::uint64_t FoldSecret(std::string_view secret, std::string_view domain) {
  std::uint64_t h = 0xCBF29CE484222325ull;  // FNV-1a offset basis
  const auto fold = [&h](std::string_view bytes) {
    for (const char c : bytes) {
      h ^= static_cast<std::uint8_t>(c);
      h *= 0x100000001B3ull;  // FNV prime
    }
  };
  fold(secret);
  fold(domain);
  // Final avalanche (splitmix64 finalizer) so short secrets still spread
  // across all 64 bits.
  h ^= h >> 30;
  h *= 0xBF58476D1CE4E5B9ull;
  h ^= h >> 27;
  h *= 0x94D049BB133111EBull;
  h ^= h >> 31;
  return h;
}

}  // namespace

std::uint64_t SipHash24(std::uint64_t k0, std::uint64_t k1,
                        const std::uint8_t* data, std::size_t size) {
  std::uint64_t v0 = k0 ^ 0x736F6D6570736575ull;
  std::uint64_t v1 = k1 ^ 0x646F72616E646F6Dull;
  std::uint64_t v2 = k0 ^ 0x6C7967656E657261ull;
  std::uint64_t v3 = k1 ^ 0x7465646279746573ull;

  const std::size_t whole = size & ~std::size_t{7};
  for (std::size_t i = 0; i < whole; i += 8) {
    std::uint64_t m = 0;
    std::memcpy(&m, data + i, 8);  // little-endian targets only (wire order)
    v3 ^= m;
    SipRound(v0, v1, v2, v3);
    SipRound(v0, v1, v2, v3);
    v0 ^= m;
  }

  std::uint64_t last = static_cast<std::uint64_t>(size & 0xFF) << 56;
  for (std::size_t i = whole; i < size; ++i) {
    last |= static_cast<std::uint64_t>(data[i]) << (8 * (i - whole));
  }
  v3 ^= last;
  SipRound(v0, v1, v2, v3);
  SipRound(v0, v1, v2, v3);
  v0 ^= last;

  v2 ^= 0xFF;
  SipRound(v0, v1, v2, v3);
  SipRound(v0, v1, v2, v3);
  SipRound(v0, v1, v2, v3);
  SipRound(v0, v1, v2, v3);
  return v0 ^ v1 ^ v2 ^ v3;
}

std::uint64_t AuthTag(std::string_view secret, std::uint64_t nonce) {
  const std::uint64_t k0 = FoldSecret(secret, "nec-auth-k0");
  const std::uint64_t k1 = FoldSecret(secret, "nec-auth-k1");
  std::uint8_t msg[8];
  for (int i = 0; i < 8; ++i) {
    msg[i] = static_cast<std::uint8_t>(nonce >> (8 * i));
  }
  return SipHash24(k0, k1, msg, sizeof msg);
}

std::uint64_t RandomNonce() {
  static std::atomic<std::uint64_t> counter{0};
  std::random_device rd;
  std::uint64_t n = (static_cast<std::uint64_t>(rd()) << 32) ^ rd();
  n ^= counter.fetch_add(0x9E3779B97F4A7C15ull, std::memory_order_relaxed);
  // splitmix64 finalizer: even a degenerate random_device cannot repeat
  // a nonce within a process lifetime.
  n ^= n >> 30;
  n *= 0xBF58476D1CE4E5B9ull;
  n ^= n >> 27;
  n *= 0x94D049BB133111EBull;
  n ^= n >> 31;
  return n;
}

}  // namespace nec::net
