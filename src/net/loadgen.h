// Closed-loop synthetic load generator for networked necd
// (`necctl loadgen`, DESIGN.md §5h).
//
// Drives N concurrent wire sessions across a pool of TCP connections
// (round-robin over one or more endpoints — shards directly, or a
// router). Each session enrolls by seed, then streams chunks closed-loop:
// submit one chunk, wait for that chunk's shadow burst, submit the next.
// One outstanding chunk per session keeps the latency sample
// well-defined (submit → first shadow byte of that chunk) without
// assuming anything about output/input sample-rate ratios, while N
// sessions in flight still saturate the shard's micro-batcher.
//
// Sessions share a small pool of pre-synthesized input streams
// (synthesis is expensive; serving is what's being measured). Two
// sessions with the same pool index use identical seeds and samples, so
// a verifier can compute the expected shadow once per pool index and
// compare every session bit-exactly — that is how the router fleet test
// proves shard placement does not change output.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace nec::net {

struct LoadGenOptions {
  /// "host:port" targets; connections round-robin across them.
  std::vector<std::string> endpoints;
  std::size_t sessions = 64;
  std::size_t connections = 8;  ///< clamped to `sessions`
  std::size_t chunks_per_session = 4;
  /// Distinct (speaker_seed, ref_seed, input stream) tuples; sessions
  /// cycle through the pool.
  std::size_t stream_pool = 8;
  std::uint64_t seed = 1;            ///< base for all derived seeds
  std::uint64_t first_wire_sid = 1;  ///< sids are first..first+sessions-1
  int connect_timeout_ms = 5000;
  int io_timeout_ms = 10000;
  /// Hard wall-clock cap; sessions still pending when it expires are
  /// reported as faulted ("load generator deadline").
  double max_seconds = 120.0;
  /// Retain each session's full shadow stream in the report (verifiers
  /// only — hundreds of sessions at 192 kHz add up).
  bool keep_shadows = false;
  /// Shared secret for the v2 auth handshake; empty drives unauthed
  /// hellos (which an auth-requiring server answers with kAuthReject —
  /// reported as auth_rejected, distinct from refused/timeout).
  std::string secret;
};

/// Per-session outcome. speaker/ref seeds and stream_index let a
/// verifier regenerate the exact input and expected output.
struct LoadGenSessionOutcome {
  std::uint64_t wire_sid = 0;
  std::size_t stream_index = 0;
  std::uint64_t speaker_seed = 0;
  std::uint64_t ref_seed = 0;
  bool completed = false;  ///< orderly kClosed with all chunks acked
  std::string error;       ///< first failure, empty when completed
  std::size_t chunks_acked = 0;
  std::size_t shadow_samples = 0;
  std::vector<float> shadow;  ///< populated when keep_shadows
};

struct LoadGenReport {
  bool ok = false;    ///< harness-level success (not per-session)
  std::string error;  ///< harness-level failure reason
  /// A hello was answered with kAuthReject (bad or missing secret) —
  /// its own failure class, not a connect refusal or timeout.
  bool auth_rejected = false;
  std::size_t sessions_completed = 0;
  std::size_t sessions_faulted = 0;
  /// Subset of sessions_faulted whose failure was an auth rejection.
  std::size_t sessions_auth_rejected = 0;
  std::uint64_t chunks_acked = 0;
  double wall_s = 0.0;  ///< streaming phase only (opens excluded)
  double chunks_per_sec = 0.0;
  /// Submit → first shadow byte of that chunk, milliseconds.
  double latency_p50_ms = 0.0;
  double latency_p90_ms = 0.0;
  double latency_p99_ms = 0.0;
  double latency_max_ms = 0.0;
  std::uint64_t bytes_in = 0;
  std::uint64_t bytes_out = 0;
  std::uint32_t chunk_samples = 0;  ///< from the server's kHelloAck
  std::vector<LoadGenSessionOutcome> sessions;
};

/// Runs the load to completion (blocking). Harness-level failures
/// (connect/hello failed, wall-clock cap) set ok=false; individual
/// session faults do not.
LoadGenReport RunLoadGen(const LoadGenOptions& options);

/// One line per report field, for `necctl loadgen` output.
std::string FormatLoadGenReport(const LoadGenReport& report);

}  // namespace nec::net
