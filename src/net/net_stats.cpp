#include "net/net_stats.h"

namespace nec::net {
namespace {

obs::MetricFamily Family(const char* name, const char* help,
                         obs::MetricType type, double value,
                         const std::string& role) {
  obs::MetricFamily family;
  family.name = name;
  family.help = help;
  family.type = type;
  obs::Metric metric;
  metric.labels.emplace_back("role", role);
  metric.value = value;
  family.metrics.push_back(std::move(metric));
  return family;
}

}  // namespace

NetStatsSnapshot NetStats::Snapshot() const {
  NetStatsSnapshot s;
  s.connections_accepted = accepted_.load(kRelaxed);
  s.connections_active = active_.load(kRelaxed);
  s.connections_dropped = dropped_.load(kRelaxed);
  s.frames_in = frames_in_.load(kRelaxed);
  s.frames_out = frames_out_.load(kRelaxed);
  s.bytes_in = bytes_in_.load(kRelaxed);
  s.bytes_out = bytes_out_.load(kRelaxed);
  s.decode_errors = decode_errors_.load(kRelaxed);
  s.protocol_errors = protocol_errors_.load(kRelaxed);
  s.sessions_opened = sessions_opened_.load(kRelaxed);
  s.sessions_closed = sessions_closed_.load(kRelaxed);
  s.sessions_faulted = sessions_faulted_.load(kRelaxed);
  s.auth_ok = auth_ok_.load(kRelaxed);
  s.auth_rejected = auth_rejected_.load(kRelaxed);
  s.overload_shed = overload_shed_.load(kRelaxed);
  s.sessions_migrated = sessions_migrated_.load(kRelaxed);
  return s;
}

std::vector<obs::MetricFamily> NetStatsToMetricFamilies(
    const NetStatsSnapshot& s, const std::string& role) {
  using obs::MetricType;
  std::vector<obs::MetricFamily> families;
  families.push_back(Family(
      "nec_net_connections_accepted_total", "TCP connections accepted",
      MetricType::kCounter, static_cast<double>(s.connections_accepted),
      role));
  families.push_back(Family(
      "nec_net_connections_active", "TCP connections currently open",
      MetricType::kGauge, static_cast<double>(s.connections_active), role));
  families.push_back(Family(
      "nec_net_connections_dropped_total",
      "connections closed on error, decode failure, or timeout",
      MetricType::kCounter, static_cast<double>(s.connections_dropped),
      role));
  families.push_back(Family("nec_net_frames_in_total",
                            "wire frames decoded from peers",
                            MetricType::kCounter,
                            static_cast<double>(s.frames_in), role));
  families.push_back(Family("nec_net_frames_out_total",
                            "wire frames sent to peers",
                            MetricType::kCounter,
                            static_cast<double>(s.frames_out), role));
  families.push_back(Family("nec_net_bytes_in_total",
                            "payload+header bytes received",
                            MetricType::kCounter,
                            static_cast<double>(s.bytes_in), role));
  families.push_back(Family("nec_net_bytes_out_total",
                            "payload+header bytes sent", MetricType::kCounter,
                            static_cast<double>(s.bytes_out), role));
  families.push_back(Family(
      "nec_net_decode_errors_total",
      "malformed frames (bad magic/version/type/length/CRC)",
      MetricType::kCounter, static_cast<double>(s.decode_errors), role));
  families.push_back(Family(
      "nec_net_protocol_errors_total",
      "well-framed but invalid requests (unknown session, bad payload)",
      MetricType::kCounter, static_cast<double>(s.protocol_errors), role));
  families.push_back(Family("nec_net_sessions_opened_total",
                            "wire sessions opened", MetricType::kCounter,
                            static_cast<double>(s.sessions_opened), role));
  families.push_back(Family("nec_net_sessions_closed_total",
                            "wire sessions completed orderly",
                            MetricType::kCounter,
                            static_cast<double>(s.sessions_closed), role));
  families.push_back(Family("nec_net_sessions_faulted_total",
                            "wire sessions ended with an error frame",
                            MetricType::kCounter,
                            static_cast<double>(s.sessions_faulted), role));
  families.push_back(Family("nec_net_auth_ok_total",
                            "auth handshakes that proved the shared secret",
                            MetricType::kCounter,
                            static_cast<double>(s.auth_ok), role));
  families.push_back(Family(
      "nec_net_auth_rejected_total",
      "connections rejected for a bad, replayed, or missing auth response",
      MetricType::kCounter, static_cast<double>(s.auth_rejected), role));
  families.push_back(Family(
      "nec_net_overload_shed_total",
      "session opens shed with typed kOverload by admission control",
      MetricType::kCounter, static_cast<double>(s.overload_shed), role));
  families.push_back(Family("nec_net_sessions_migrated_total",
                            "sticky sessions moved by a draining reshard",
                            MetricType::kCounter,
                            static_cast<double>(s.sessions_migrated), role));
  return families;
}

}  // namespace nec::net
