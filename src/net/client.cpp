#include "net/client.h"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

#include "net/auth.h"
#include "net/socket.h"
#include "obs/trace.h"
#include "runtime/fault.h"

namespace nec::net {
namespace {

std::int64_t NowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void SetError(std::string* error, std::string message) {
  if (error != nullptr) *error = std::move(message);
}

}  // namespace

NetClient::~NetClient() { Close(); }

bool NetClient::Connect(const std::string& host, int port,
                        int connect_timeout_ms, std::string* error) {
  Close();
  // A new connection is a new protocol instance: the previous hello,
  // any connection-scoped error (auth reject included), and all wire
  // session state belong to the old socket. Carrying them over would
  // make Hello() return a stale ack without running the handshake —
  // and a stale connection_error_ fail it before it starts.
  hello_info_.reset();
  connection_error_.reset();
  auth_rejected_ = false;
  shard_status_.reset();
  sessions_.clear();
  fd_ = DialTcp(host, port, connect_timeout_ms, error);
  return fd_ >= 0;
}

void NetClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  decoder_.Reset();
}

bool NetClient::SendFrame(const Frame& frame, std::string* error) {
  if (fd_ < 0) {
    SetError(error, "not connected");
    return false;
  }
  std::string wire;
  EncodeFrame(frame, &wire);
  std::string io_error;
  IoStatus status =
      WriteFull(fd_, wire.data(), wire.size(), io_timeout_ms_, &io_error);
  if (status != IoStatus::kOk) {
    SetError(error, std::string("send ") + FrameTypeName(frame.type) + ": " +
                        (io_error.empty() ? IoStatusName(status) : io_error));
    return false;
  }
  bytes_out_ += wire.size();
  return true;
}

bool NetClient::Hello(HelloInfo* info, int timeout_ms, std::string* error) {
  Frame frame;
  frame.type = FrameType::kHello;
  frame.session_id = 0;
  PutU32(&frame.payload, kProtocolVersion);
  PutU32(&frame.payload, kProtocolVersion);
  if (!SendFrame(frame, error)) return false;

  const std::int64_t deadline = NowMs() + timeout_ms;
  while (!hello_info_.has_value()) {
    if (connection_error_.has_value()) {
      SetError(error, "hello rejected: " + connection_error_->message);
      return false;
    }
    const int remaining = static_cast<int>(deadline - NowMs());
    if (remaining <= 0) {
      SetError(error, "hello: timed out waiting for ack");
      return false;
    }
    bool timed_out = false;
    if (!PumpOnce(remaining, &timed_out, error)) return false;
  }
  if (info != nullptr) *info = *hello_info_;
  return true;
}

bool NetClient::SendOpenSession(std::uint64_t wire_sid,
                                std::uint64_t speaker_seed,
                                std::uint64_t ref_seed, std::string* error) {
  Frame frame;
  frame.type = FrameType::kOpenSession;
  frame.session_id = wire_sid;
  PutU64(&frame.payload, speaker_seed);
  PutU64(&frame.payload, ref_seed);
  return SendFrame(frame, error);
}

bool NetClient::OpenSession(std::uint64_t wire_sid, std::uint64_t speaker_seed,
                            std::uint64_t ref_seed, int timeout_ms,
                            std::string* error) {
  if (!SendOpenSession(wire_sid, speaker_seed, ref_seed, error)) return false;
  const std::int64_t deadline = NowMs() + timeout_ms;
  for (;;) {
    const WireSessionState& state = sessions_[wire_sid];
    if (state.error.has_value()) {
      SetError(error, "open session " + std::to_string(wire_sid) +
                          " rejected: " + state.error->message);
      return false;
    }
    if (state.open_acked) return true;
    const int remaining = static_cast<int>(deadline - NowMs());
    if (remaining <= 0) {
      SetError(error, "open session " + std::to_string(wire_sid) +
                          ": timed out waiting for ack");
      return false;
    }
    bool timed_out = false;
    if (!PumpOnce(remaining, &timed_out, error)) return false;
  }
}

bool NetClient::SubmitChunk(std::uint64_t wire_sid,
                            std::span<const float> samples,
                            std::string* error) {
  // Trace-context propagation (DESIGN.md §5g): with tracing on, mint a
  // flow id and send it ahead of the chunk as a kTraceContext frame. The
  // receiver attaches it to this chunk, so the client-submit span below
  // and the shard's compute span share one flow in the merged trace.
  // With tracing off this path adds exactly one relaxed load.
  obs::TraceRecorder& rec = obs::TraceRecorder::Global();
  std::uint64_t flow = 0;
  std::uint64_t t0_ns = 0;
  if (rec.enabled()) {
    flow = rec.NextFlowId();
    t0_ns = obs::TraceNowNs();
    Frame context;
    context.type = FrameType::kTraceContext;
    context.session_id = wire_sid;
    PutU64(&context.payload, flow);
    if (!SendFrame(context, error)) return false;
  }
  Frame frame;
  frame.type = FrameType::kSubmitChunk;
  frame.session_id = wire_sid;
  PutFloats(&frame.payload, samples);
  const bool sent = SendFrame(frame, error);
  if (flow != 0 && sent) {
    rec.RecordSpan("client.submit", "net", t0_ns,
                   obs::TraceNowNs() - t0_ns, flow, wire_sid);
    rec.RecordFlow(obs::TraceEventKind::kFlowBegin, "chunk.flow", flow);
  }
  return sent;
}

bool NetClient::SendCloseSession(std::uint64_t wire_sid, std::string* error) {
  Frame frame;
  frame.type = FrameType::kCloseSession;
  frame.session_id = wire_sid;
  return SendFrame(frame, error);
}

bool NetClient::Ping(std::span<const std::uint8_t> payload,
                     std::string* error) {
  Frame frame;
  frame.type = FrameType::kPing;
  frame.session_id = 0;
  frame.payload.assign(payload.begin(), payload.end());
  return SendFrame(frame, error);
}

bool NetClient::QueryStatus(ShardStatusPayload* status, int timeout_ms,
                            std::string* error) {
  shard_status_.reset();
  Frame frame;
  frame.type = FrameType::kStatusRequest;
  frame.session_id = 0;
  if (!SendFrame(frame, error)) return false;
  const std::int64_t deadline = NowMs() + timeout_ms;
  while (!shard_status_.has_value()) {
    if (connection_error_.has_value()) {
      SetError(error, "status rejected: " + connection_error_->message);
      return false;
    }
    const int remaining = static_cast<int>(deadline - NowMs());
    if (remaining <= 0) {
      SetError(error, "status: timed out waiting for reply");
      return false;
    }
    bool timed_out = false;
    if (!PumpOnce(remaining, &timed_out, error)) return false;
  }
  if (status != nullptr) *status = *shard_status_;
  return true;
}

bool NetClient::PumpOnce(int timeout_ms, bool* timed_out, std::string* error) {
  if (timed_out != nullptr) *timed_out = false;
  if (fd_ < 0) {
    SetError(error, "not connected");
    return false;
  }

  // Wait (up to timeout_ms) for the first readable byte, then drain
  // everything already queued without blocking again.
  std::uint8_t buf[16384];
  std::string io_error;
  IoStatus status = ReadFull(fd_, buf, 1, timeout_ms, &io_error);
  if (status == IoStatus::kTimeout) {
    if (timed_out != nullptr) *timed_out = true;
    return true;
  }
  if (status != IoStatus::kOk) {
    SetError(error, std::string("recv: ") +
                        (io_error.empty() ? IoStatusName(status) : io_error));
    return false;
  }
  bytes_in_ += 1;
  decoder_.Feed(buf, 1);
  bool peer_closed = false;
  for (;;) {
    ssize_t n = ::recv(fd_, buf, sizeof(buf), MSG_DONTWAIT);
    if (n > 0) {
      bytes_in_ += static_cast<std::uint64_t>(n);
      decoder_.Feed(buf, static_cast<std::size_t>(n));
      continue;
    }
    if (n == 0) {
      // A server that rejects the handshake writes kAuthReject and then
      // closes, so the verdict frame and the EOF often arrive in the same
      // pump. Dispatch what the decoder already holds before reporting
      // the close, or the typed reject would be lost to a generic error.
      peer_closed = true;
      break;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    SetError(error, std::string("recv: ") + std::strerror(errno));
    return false;
  }

  Frame frame;
  DecodeStatus decode;
  while ((decode = decoder_.Next(&frame)) == DecodeStatus::kOk) {
    frames_in_ += 1;
    Dispatch(std::move(frame));
  }
  if (IsDecodeError(decode)) {
    SetError(error,
             std::string("malformed frame: ") + DecodeStatusName(decode));
    return false;
  }
  if (peer_closed) {
    SetError(error, "recv: connection closed by peer");
    return false;
  }
  return true;
}

bool NetClient::WaitDone(std::uint64_t wire_sid, int timeout_ms,
                         std::string* error) {
  const std::int64_t deadline = NowMs() + timeout_ms;
  while (!sessions_[wire_sid].done()) {
    const int remaining = static_cast<int>(deadline - NowMs());
    if (remaining <= 0) {
      SetError(error, "session " + std::to_string(wire_sid) +
                          ": timed out waiting for close");
      return false;
    }
    bool timed_out = false;
    if (!PumpOnce(remaining, &timed_out, error)) return false;
  }
  return true;
}

void NetClient::Dispatch(Frame&& frame) {
  switch (frame.type) {
    case FrameType::kHelloAck: {
      PayloadReader reader(frame.payload);
      HelloInfo info;
      if (reader.U32(&info.version) && reader.U32(&info.input_sample_rate) &&
          reader.U32(&info.chunk_samples) &&
          reader.U32(&info.output_sample_rate) &&
          reader.U32(&info.output_samples_per_chunk)) {
        hello_info_ = info;
      }
      return;
    }
    case FrameType::kOpenAck:
      sessions_[frame.session_id].open_acked = true;
      return;
    case FrameType::kShadowData: {
      PayloadReader reader(frame.payload);
      std::vector<float> samples;
      if (reader.Floats(&samples)) {
        auto& shadow = sessions_[frame.session_id].shadow;
        shadow.insert(shadow.end(), samples.begin(), samples.end());
      }
      return;
    }
    case FrameType::kClosed:
      sessions_[frame.session_id].closed = true;
      return;
    case FrameType::kError: {
      PayloadReader reader(frame.payload);
      WireError wire_error;
      if (!reader.U32(&wire_error.category)) wire_error.category = 0;
      wire_error.message = reader.RemainingText();
      if (frame.session_id == 0) {
        connection_error_ = std::move(wire_error);
      } else {
        sessions_[frame.session_id].error = std::move(wire_error);
      }
      return;
    }
    case FrameType::kPong:
      return;  // keepalive reply; nothing to record
    case FrameType::kAuthChallenge: {
      if (secret_.empty()) {
        // The server demands auth we cannot provide: fail the handshake
        // locally instead of timing out against a server that will never
        // ack.
        connection_error_ = WireError{
            static_cast<std::uint32_t>(
                runtime::ErrorCategory::kAuthRejected),
            "server requires a shared secret (--secret) and none is set"};
        auth_rejected_ = true;
        return;
      }
      PayloadReader reader(frame.payload);
      std::uint64_t nonce = 0;
      if (!reader.U64(&nonce) || !reader.complete()) {
        connection_error_ =
            WireError{0, "malformed auth challenge payload"};
        return;
      }
      Frame response;
      response.type = FrameType::kAuthResponse;
      response.session_id = frame.session_id;
      PutU64(&response.payload, AuthTag(secret_, nonce));
      // A failed send surfaces on the next pump (connection closed).
      SendFrame(response, nullptr);
      return;
    }
    case FrameType::kAuthReject: {
      PayloadReader reader(frame.payload);
      WireError wire_error;
      if (!reader.U32(&wire_error.category)) wire_error.category = 0;
      wire_error.message = reader.RemainingText();
      auth_rejected_ = true;
      connection_error_ = std::move(wire_error);
      return;
    }
    case FrameType::kShardStatus: {
      ShardStatusPayload status;
      if (ParseShardStatus(frame.payload, &status)) {
        shard_status_ = status;
      }
      return;
    }
    default:
      return;  // server-bound types are ignored if echoed back
  }
}

}  // namespace nec::net
