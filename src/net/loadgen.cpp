#include "net/loadgen.h"

#include <poll.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <memory>

#include "net/client.h"
#include "net/socket.h"
#include "runtime/fault.h"
#include "synth/dataset.h"

namespace nec::net {
namespace {

double NowS() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

double Quantile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const auto n = static_cast<double>(sorted.size());
  auto idx = static_cast<std::size_t>(std::ceil(q * n));
  if (idx > 0) --idx;
  if (idx >= sorted.size()) idx = sorted.size() - 1;
  return sorted[idx];
}

enum class Phase { kOpening, kAwaitBurst, kClosing, kCompleted, kFaulted };

struct SessionDrive {
  std::uint64_t wire_sid = 0;
  std::size_t stream_index = 0;
  std::size_t client_index = 0;
  Phase phase = Phase::kOpening;
  std::size_t next_chunk = 0;   ///< chunks submitted so far
  std::size_t chunks_acked = 0;
  std::size_t watermark = 0;    ///< shadow samples when last chunk went out
  double submit_s = 0.0;
  std::string error;
  bool auth_rejected = false;  ///< fault was a kAuthReject, not transport
};

}  // namespace

LoadGenReport RunLoadGen(const LoadGenOptions& options) {
  LoadGenReport report;
  if (options.endpoints.empty() || options.sessions == 0 ||
      options.chunks_per_session == 0) {
    report.error = "loadgen: need >=1 endpoint, >=1 session, >=1 chunk";
    return report;
  }

  const std::size_t num_clients =
      std::max<std::size_t>(1, std::min(options.connections, options.sessions));
  std::vector<std::unique_ptr<NetClient>> clients;
  std::vector<bool> client_alive(num_clients, true);
  HelloInfo hello;
  for (std::size_t j = 0; j < num_clients; ++j) {
    std::string host;
    int port = 0;
    const std::string& endpoint =
        options.endpoints[j % options.endpoints.size()];
    if (!ParseHostPort(endpoint, &host, &port)) {
      report.error = "loadgen: bad endpoint '" + endpoint + "'";
      return report;
    }
    auto client = std::make_unique<NetClient>();
    client->set_secret(options.secret);
    std::string error;
    if (!client->Connect(host, port, options.connect_timeout_ms, &error)) {
      report.error = "loadgen: connect " + endpoint + ": " + error;
      return report;
    }
    HelloInfo info;
    if (!client->Hello(&info, options.io_timeout_ms, &error)) {
      report.auth_rejected = client->auth_rejected();
      report.error = "loadgen: hello " + endpoint + ": " + error;
      return report;
    }
    if (j == 0) {
      hello = info;
    } else if (info.chunk_samples != hello.chunk_samples) {
      report.error = "loadgen: endpoints disagree on chunk_samples (" +
                     std::to_string(hello.chunk_samples) + " vs " +
                     std::to_string(info.chunk_samples) + ")";
      return report;
    }
    clients.push_back(std::move(client));
  }
  report.chunk_samples = hello.chunk_samples;
  if (hello.chunk_samples == 0 || hello.input_sample_rate == 0) {
    report.error = "loadgen: server advertised zero chunk geometry";
    return report;
  }

  // Pre-synthesize the shared input streams — serving is what is being
  // measured, not synthesis.
  const std::size_t pool =
      std::max<std::size_t>(1, std::min(options.stream_pool, options.sessions));
  const std::size_t samples_needed =
      options.chunks_per_session * hello.chunk_samples;
  struct Stream {
    std::uint64_t speaker_seed;
    std::uint64_t ref_seed;
    std::vector<float> samples;
  };
  std::vector<Stream> streams(pool);
  synth::DatasetBuilder builder(
      {.sample_rate = static_cast<int>(hello.input_sample_rate),
       .duration_s = static_cast<double>(samples_needed) /
                     static_cast<double>(hello.input_sample_rate)});
  for (std::size_t p = 0; p < pool; ++p) {
    Stream& stream = streams[p];
    stream.speaker_seed = options.seed + 101 * (p + 1);
    stream.ref_seed = options.seed + 577 * (p + 1);
    const auto speaker = synth::SpeakerProfile::FromSeed(stream.speaker_seed);
    auto instance = builder.MakeInstance(speaker, synth::Scenario::kBabble,
                                         options.seed + 7919 * (p + 1));
    stream.samples = std::move(instance.mixed.data());
    stream.samples.resize(samples_needed, 0.0f);  // pad rounding shortfall
  }

  std::vector<SessionDrive> drives(options.sessions);
  for (std::size_t i = 0; i < options.sessions; ++i) {
    drives[i].wire_sid = options.first_wire_sid + i;
    drives[i].stream_index = i % pool;
    drives[i].client_index = i % num_clients;
  }

  const double start_s = NowS();
  const double deadline_s = start_s + options.max_seconds;

  auto fault_session = [&](SessionDrive& drive, const std::string& why,
                           bool auth_rejected = false) {
    if (drive.phase == Phase::kCompleted || drive.phase == Phase::kFaulted)
      return;
    drive.phase = Phase::kFaulted;
    drive.error = why;
    drive.auth_rejected = auth_rejected;
  };
  auto fault_client = [&](std::size_t j, const std::string& why) {
    if (!client_alive[j]) return;
    client_alive[j] = false;
    const bool auth_rejected = clients[j]->auth_rejected();
    clients[j]->Close();
    for (auto& drive : drives) {
      if (drive.client_index == j) fault_session(drive, why, auth_rejected);
    }
  };
  auto submit_chunk = [&](SessionDrive& drive) {
    NetClient& client = *clients[drive.client_index];
    const Stream& stream = streams[drive.stream_index];
    std::span<const float> chunk(
        stream.samples.data() + drive.next_chunk * hello.chunk_samples,
        hello.chunk_samples);
    std::string error;
    drive.watermark = client.session(drive.wire_sid).shadow.size();
    drive.submit_s = NowS();
    if (!client.SubmitChunk(drive.wire_sid, chunk, &error)) {
      fault_client(drive.client_index, "submit: " + error);
      return;
    }
    drive.next_chunk += 1;
    drive.phase = Phase::kAwaitBurst;
  };
  auto pump_clients = [&](int timeout_ms) {
    std::vector<pollfd> fds;
    std::vector<std::size_t> owner;
    for (std::size_t j = 0; j < num_clients; ++j) {
      if (!client_alive[j]) continue;
      fds.push_back({clients[j]->fd(), POLLIN, 0});
      owner.push_back(j);
    }
    if (fds.empty()) return;
    const int rc = ::poll(fds.data(), fds.size(), timeout_ms);
    if (rc <= 0) return;  // timeout or EINTR — the outer loop retries
    for (std::size_t k = 0; k < fds.size(); ++k) {
      if ((fds[k].revents & (POLLIN | POLLERR | POLLHUP)) == 0) continue;
      bool timed_out = false;
      std::string error;
      if (!clients[owner[k]]->PumpOnce(0, &timed_out, &error)) {
        fault_client(owner[k], "recv: " + error);
      }
    }
  };

  // Phase A — open every session and wait for all acks (not timed as
  // throughput: enrollment synthesis dominates and happens once).
  for (auto& drive : drives) {
    if (!client_alive[drive.client_index]) continue;
    NetClient& client = *clients[drive.client_index];
    const Stream& stream = streams[drive.stream_index];
    std::string error;
    if (!client.SendOpenSession(drive.wire_sid, stream.speaker_seed,
                                stream.ref_seed, &error)) {
      fault_client(drive.client_index, "open: " + error);
    }
  }
  for (;;) {
    bool pending = false;
    for (auto& drive : drives) {
      if (drive.phase != Phase::kOpening) continue;
      if (!client_alive[drive.client_index]) continue;
      const auto& state =
          clients[drive.client_index]->session(drive.wire_sid);
      if (state.error.has_value()) {
        fault_session(drive, "open rejected: " + state.error->message,
                      state.error->category ==
                          static_cast<std::uint32_t>(
                              runtime::ErrorCategory::kAuthRejected));
      } else if (!state.open_acked) {
        pending = true;
      }
    }
    if (!pending) break;
    if (NowS() > deadline_s) {
      for (auto& drive : drives) {
        if (drive.phase == Phase::kOpening)
          fault_session(drive, "load generator deadline (open)");
      }
      break;
    }
    pump_clients(50);
  }

  // Phase B — closed-loop streaming, timed.
  const double stream_start_s = NowS();
  std::vector<double> latencies_ms;
  latencies_ms.reserve(options.sessions * options.chunks_per_session);
  for (auto& drive : drives) {
    if (drive.phase == Phase::kOpening) submit_chunk(drive);
  }
  for (;;) {
    bool pending = false;
    for (auto& drive : drives) {
      if (drive.phase == Phase::kCompleted || drive.phase == Phase::kFaulted)
        continue;
      if (!client_alive[drive.client_index]) continue;
      NetClient& client = *clients[drive.client_index];
      const auto& state = client.session(drive.wire_sid);
      if (state.error.has_value()) {
        fault_session(drive,
                      "session error (" +
                          std::to_string(state.error->category) +
                          "): " + state.error->message,
                      state.error->category ==
                          static_cast<std::uint32_t>(
                              runtime::ErrorCategory::kAuthRejected));
        continue;
      }
      if (drive.phase == Phase::kAwaitBurst) {
        if (state.shadow.size() > drive.watermark) {
          latencies_ms.push_back((NowS() - drive.submit_s) * 1e3);
          drive.chunks_acked += 1;
          report.chunks_acked += 1;
          if (drive.next_chunk < options.chunks_per_session) {
            submit_chunk(drive);
          } else {
            std::string error;
            if (!client.SendCloseSession(drive.wire_sid, &error)) {
              fault_client(drive.client_index, "close: " + error);
              continue;
            }
            drive.phase = Phase::kClosing;
          }
        }
      }
      if (drive.phase == Phase::kClosing && state.closed) {
        drive.phase = Phase::kCompleted;
        continue;
      }
      if (drive.phase != Phase::kCompleted && drive.phase != Phase::kFaulted)
        pending = true;
    }
    if (!pending) break;
    if (NowS() > deadline_s) {
      for (auto& drive : drives) {
        if (drive.phase != Phase::kCompleted && drive.phase != Phase::kFaulted)
          fault_session(drive, "load generator deadline (stream)");
      }
      break;
    }
    pump_clients(20);
  }
  report.wall_s = NowS() - stream_start_s;

  // Collect outcomes.
  report.sessions.resize(options.sessions);
  for (std::size_t i = 0; i < options.sessions; ++i) {
    SessionDrive& drive = drives[i];
    LoadGenSessionOutcome& outcome = report.sessions[i];
    outcome.wire_sid = drive.wire_sid;
    outcome.stream_index = drive.stream_index;
    outcome.speaker_seed = streams[drive.stream_index].speaker_seed;
    outcome.ref_seed = streams[drive.stream_index].ref_seed;
    outcome.completed = drive.phase == Phase::kCompleted;
    outcome.error = drive.error;
    outcome.chunks_acked = drive.chunks_acked;
    auto* state = clients[drive.client_index]->mutable_session(drive.wire_sid);
    outcome.shadow_samples = state->shadow.size();
    if (options.keep_shadows) outcome.shadow = std::move(state->shadow);
    if (outcome.completed) {
      report.sessions_completed += 1;
    } else {
      report.sessions_faulted += 1;
      if (drive.auth_rejected) report.sessions_auth_rejected += 1;
    }
  }
  for (const auto& client : clients) {
    report.bytes_in += client->bytes_in();
    report.bytes_out += client->bytes_out();
  }
  std::sort(latencies_ms.begin(), latencies_ms.end());
  report.latency_p50_ms = Quantile(latencies_ms, 0.50);
  report.latency_p90_ms = Quantile(latencies_ms, 0.90);
  report.latency_p99_ms = Quantile(latencies_ms, 0.99);
  report.latency_max_ms = latencies_ms.empty() ? 0.0 : latencies_ms.back();
  if (report.wall_s > 0.0) {
    report.chunks_per_sec =
        static_cast<double>(report.chunks_acked) / report.wall_s;
  }
  report.ok = report.error.empty();
  return report;
}

std::string FormatLoadGenReport(const LoadGenReport& report) {
  char line[256];
  std::string out;
  auto add = [&](const char* fmt, auto... args) {
    std::snprintf(line, sizeof(line), fmt, args...);
    out += line;
    out += '\n';
  };
  if (!report.error.empty()) add("error                 %s", report.error.c_str());
  if (report.auth_rejected) add("auth_rejected         true");
  add("sessions_completed    %zu", report.sessions_completed);
  add("sessions_faulted      %zu", report.sessions_faulted);
  add("sessions_auth_rejected %zu", report.sessions_auth_rejected);
  add("chunks_acked          %llu",
      static_cast<unsigned long long>(report.chunks_acked));
  add("wall_s                %.3f", report.wall_s);
  add("chunks_per_sec        %.1f", report.chunks_per_sec);
  add("latency_p50_ms        %.2f", report.latency_p50_ms);
  add("latency_p90_ms        %.2f", report.latency_p90_ms);
  add("latency_p99_ms        %.2f", report.latency_p99_ms);
  add("latency_max_ms        %.2f", report.latency_max_ms);
  add("bytes_in              %llu",
      static_cast<unsigned long long>(report.bytes_in));
  add("bytes_out             %llu",
      static_cast<unsigned long long>(report.bytes_out));
  return out;
}

}  // namespace nec::net
