// Connection-level counters for the nec::net subsystem.
//
// One NetStats instance is owned by each listener-side component (the
// NetServer inside `necd --listen`, the client-facing side of the
// Router). All fields are relaxed atomics — the poll loop updates them
// inline and the metrics endpoint snapshots them from another thread
// without coordination, same discipline as runtime::RuntimeStats.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace nec::net {

/// Plain-struct snapshot of NetStats at one moment.
struct NetStatsSnapshot {
  std::uint64_t connections_accepted = 0;
  std::uint64_t connections_active = 0;   ///< currently open
  std::uint64_t connections_dropped = 0;  ///< closed by error/timeout/us
  std::uint64_t frames_in = 0;
  std::uint64_t frames_out = 0;
  std::uint64_t bytes_in = 0;
  std::uint64_t bytes_out = 0;
  std::uint64_t decode_errors = 0;    ///< malformed frames (typed, fatal)
  std::uint64_t protocol_errors = 0;  ///< well-framed but invalid requests
  std::uint64_t sessions_opened = 0;
  std::uint64_t sessions_closed = 0;  ///< orderly kClosed completions
  std::uint64_t sessions_faulted = 0; ///< ended with a kError frame
  std::uint64_t auth_ok = 0;          ///< handshakes that proved the secret
  std::uint64_t auth_rejected = 0;    ///< bad/replayed/missing auth
  std::uint64_t overload_shed = 0;    ///< opens refused by admission control
  std::uint64_t sessions_migrated = 0;  ///< moved by a draining reshard
};

class NetStats {
 public:
  void AddAccepted() {
    accepted_.fetch_add(1, kRelaxed);
    active_.fetch_add(1, kRelaxed);
  }
  void AddClosed(bool dropped) {
    active_.fetch_sub(1, kRelaxed);
    if (dropped) dropped_.fetch_add(1, kRelaxed);
  }
  void AddFrameIn() { frames_in_.fetch_add(1, kRelaxed); }
  void AddFrameOut() { frames_out_.fetch_add(1, kRelaxed); }
  void AddBytesIn(std::uint64_t n) { bytes_in_.fetch_add(n, kRelaxed); }
  void AddBytesOut(std::uint64_t n) { bytes_out_.fetch_add(n, kRelaxed); }
  void AddDecodeError() { decode_errors_.fetch_add(1, kRelaxed); }
  void AddProtocolError() { protocol_errors_.fetch_add(1, kRelaxed); }
  void AddSessionOpened() { sessions_opened_.fetch_add(1, kRelaxed); }
  void AddSessionClosed() { sessions_closed_.fetch_add(1, kRelaxed); }
  void AddSessionFaulted() { sessions_faulted_.fetch_add(1, kRelaxed); }
  void AddAuthOk() { auth_ok_.fetch_add(1, kRelaxed); }
  void AddAuthRejected() { auth_rejected_.fetch_add(1, kRelaxed); }
  void AddOverloadShed() { overload_shed_.fetch_add(1, kRelaxed); }
  void AddSessionMigrated() { sessions_migrated_.fetch_add(1, kRelaxed); }

  NetStatsSnapshot Snapshot() const;

 private:
  static constexpr auto kRelaxed = std::memory_order_relaxed;

  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> active_{0};
  std::atomic<std::uint64_t> dropped_{0};
  std::atomic<std::uint64_t> frames_in_{0};
  std::atomic<std::uint64_t> frames_out_{0};
  std::atomic<std::uint64_t> bytes_in_{0};
  std::atomic<std::uint64_t> bytes_out_{0};
  std::atomic<std::uint64_t> decode_errors_{0};
  std::atomic<std::uint64_t> protocol_errors_{0};
  std::atomic<std::uint64_t> sessions_opened_{0};
  std::atomic<std::uint64_t> sessions_closed_{0};
  std::atomic<std::uint64_t> sessions_faulted_{0};
  std::atomic<std::uint64_t> auth_ok_{0};
  std::atomic<std::uint64_t> auth_rejected_{0};
  std::atomic<std::uint64_t> overload_shed_{0};
  std::atomic<std::uint64_t> sessions_migrated_{0};
};

/// Converts a snapshot into Prometheus families, all named
/// `nec_net_<field>` with `role` as a constant label (e.g. role="server"
/// or role="router"), so a shard and a router scraped by the same job
/// stay distinguishable.
std::vector<obs::MetricFamily> NetStatsToMetricFamilies(
    const NetStatsSnapshot& snapshot, const std::string& role);

}  // namespace nec::net
