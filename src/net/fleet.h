// Fleet-wide metrics aggregation (DESIGN.md §5g).
//
// A fleet is a router plus its member shards, each exposing its own
// Prometheus /metrics endpoint. Per-process scrapes answer "how is shard
// 3 doing"; capacity questions — fleet p99, total chunks/s, which member
// is dragging the tail — need ONE merged view. This module scrapes every
// member, parses the exposition text back into families
// (obs::ParsePrometheusText), and folds them together: counters and
// gauges sum per label set, histograms merge bucket-wise onto the
// canonical LatencyHistogram grid (runtime::MergeHistogramData), so any
// quantile of the merged CDF is a true fleet quantile, not an average of
// per-shard quantiles.
//
// The fold itself (FoldMemberMetrics) is pure — text in, view mutated —
// so tests drive it without sockets; ScrapeFleet is the thin HTTP layer
// the router's /fleet handlers use. A member that is unreachable, fails
// the exposition lint, or exposes an off-grid histogram is reported in
// its row and skipped; the merged view is always the sum of exactly the
// members whose `folded` flag is set.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/router.h"
#include "obs/http.h"
#include "obs/metrics.h"

namespace nec::net {

/// One scrape target: a member's metrics/health HTTP endpoint.
struct FleetMember {
  std::string label;  ///< display label (the shard's data-plane "host:port")
  std::string host;
  int port = 0;  ///< obs::MetricsServer port
};

/// One member's outcome in an aggregation pass, with the headline
/// numbers `necctl top` renders per row (0 when the family was absent).
struct FleetMemberRow {
  std::string label;
  bool reachable = false;  ///< HTTP scrape returned 200
  bool folded = false;     ///< parsed + merged into the fleet view
  std::string error;       ///< scrape/parse/merge diagnostic when !folded
  double chunks_total = 0.0;
  double queue_depth = 0.0;
  double e2e_p50_ms = 0.0;
  double e2e_p99_ms = 0.0;
  std::uint64_t e2e_count = 0;  ///< samples in the member's e2e histogram
  double faults_total = 0.0;
  double deadline_misses_total = 0.0;
  double auth_rejects_total = 0.0;
  double degrade_down_total = 0.0;
  double degrade_up_total = 0.0;
};

/// Merged fleet view: one family per name, counters/gauges summed and
/// histograms bucket-merged across every folded member.
struct FleetView {
  std::vector<obs::MetricFamily> merged;
  std::vector<FleetMemberRow> rows;
  std::size_t folded = 0;  ///< rows successfully merged
};

/// Parses one member's Prometheus exposition text and folds it into
/// `view->merged`, appending a populated row. Returns false (row keeps
/// the diagnostic) when the text fails the exposition lint; a histogram
/// metric whose buckets are off the canonical grid is skipped with the
/// diagnostic recorded but the member's remaining families still fold.
bool FoldMemberMetrics(const std::string& label, const std::string& text,
                       FleetView* view);

/// Scrapes every member's /metrics and folds the responses. Never
/// fails: unreachable members get a row with `reachable == false`.
FleetView ScrapeFleet(const std::vector<FleetMember>& members,
                      const obs::HttpGetOptions& http);

/// The fleet view as one JSON document:
/// {"folded":N,"members":[row...],"shards":[router state...],
///  "merged":{"families":[...]}}. `shards` carries the router's own
/// health/placement view (saturated, draining, migrations) keyed by the
/// same labels as `members`.
std::string RenderFleetJson(const FleetView& view,
                            const std::vector<RouterShardStatus>& shards);

/// Human-readable fleet table (the single-frame form of `necctl top`).
std::string RenderFleetText(const FleetView& view,
                            const std::vector<RouterShardStatus>& shards);

}  // namespace nec::net
