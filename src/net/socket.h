// Dependency-free POSIX TCP layer for the nec::net wire protocol
// (DESIGN.md §5h).
//
// Everything the networked daemon, the router, and the clients share
// lives here: a process-wide SIGPIPE ignore (a dropped client must never
// kill a shard), EINTR-safe full-buffer read/write loops with
// per-operation timeouts, a poll-based connect with its own timeout that
// distinguishes "refused" from "timed out", and a small listener wrapper.
// No resolver dependency: hosts are IPv4 dotted-quad literals or
// "localhost" (the same contract obs::HttpGet already enforces), so the
// layer works identically inside minimal CI containers.
#pragma once

#include <cstddef>
#include <string>

namespace nec::net {

/// Outcome of a full-buffer socket operation.
enum class IoStatus {
  kOk,       ///< the whole buffer was transferred
  kTimeout,  ///< the per-operation deadline elapsed mid-transfer
  kClosed,   ///< orderly peer shutdown before the buffer completed
  kError,    ///< a socket error (message in *error)
};

const char* IoStatusName(IoStatus status);

/// Installs SIG_IGN for SIGPIPE once per process (idempotent,
/// thread-safe). Every Listen/Dial path calls this, so a peer that
/// disappears mid-write surfaces as EPIPE from send(), never as a
/// process-killing signal. Writes additionally pass MSG_NOSIGNAL where
/// the platform has it.
void IgnoreSigpipe();

/// Switches O_NONBLOCK on `fd`. Returns false on fcntl failure.
bool SetNonBlocking(int fd, bool nonblocking);

/// Reads exactly `size` bytes into `buf`, retrying short reads and EINTR,
/// polling up to `timeout_ms` for readability before each recv (< 0 waits
/// forever). On kError a human-readable reason lands in *error (may be
/// null). Works on blocking and non-blocking sockets alike.
IoStatus ReadFull(int fd, void* buf, std::size_t size, int timeout_ms,
                  std::string* error = nullptr);

/// Mirror image of ReadFull for send(); kClosed reports a peer that reset
/// or shut down the connection mid-write (EPIPE/ECONNRESET).
IoStatus WriteFull(int fd, const void* buf, std::size_t size, int timeout_ms,
                   std::string* error = nullptr);

/// Connects to host:port with a non-blocking connect + poll bounded by
/// `connect_timeout_ms`. Returns the connected fd (restored to blocking
/// mode) or -1 with the reason in *error — "connection refused" and
/// "connect timed out" are distinct messages so callers can tell a dead
/// shard from a black-holed one. Host must be an IPv4 literal or
/// "localhost".
int DialTcp(const std::string& host, int port, int connect_timeout_ms,
            std::string* error);

/// Splits "host:port" (port required). Returns false on malformed input.
bool ParseHostPort(const std::string& spec, std::string* host, int* port);

/// Listening socket with ephemeral-port support (port 0 picks one;
/// port() reports the real one). Accept is non-blocking: the owner drives
/// it from a poll loop.
class TcpListener {
 public:
  TcpListener() = default;
  ~TcpListener() { Close(); }

  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  /// Binds + listens (SO_REUSEADDR, non-blocking). False with reason in
  /// *error on failure.
  bool Listen(const std::string& host, int port, std::string* error);

  /// Accepts one pending connection (returned fd is non-blocking), or -1
  /// when none is pending.
  int Accept();

  void Close();

  int fd() const { return fd_; }
  int port() const { return port_; }
  bool listening() const { return fd_ >= 0; }

 private:
  int fd_ = -1;
  int port_ = 0;
};

}  // namespace nec::net
