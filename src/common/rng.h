// Deterministic random number generation for the NEC library.
//
// Every stochastic component in the reproduction (speaker identities, noise
// generators, dataset mixing, NN weight init, user-rating reviewer bias)
// takes an explicit seed so experiments are bit-reproducible across runs.
#pragma once

#include <cstdint>
#include <random>

namespace nec {

/// Thin deterministic RNG wrapper around std::mt19937_64 with convenience
/// sampling helpers. Copyable; copying forks the stream deterministically.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Uniform float in [lo, hi).
  float UniformF(float lo, float hi) {
    return std::uniform_real_distribution<float>(lo, hi)(engine_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  int UniformInt(int lo, int hi) {
    return std::uniform_int_distribution<int>(lo, hi)(engine_);
  }

  /// Uniform 64-bit value; useful to derive child seeds.
  std::uint64_t NextSeed() { return engine_(); }

  /// Standard normal scaled by `stddev` around `mean`.
  double Gaussian(double mean = 0.0, double stddev = 1.0) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  float GaussianF(float mean = 0.0f, float stddev = 1.0f) {
    return std::normal_distribution<float>(mean, stddev)(engine_);
  }

  /// Bernoulli trial with probability p of returning true.
  bool Chance(double p) {
    return std::bernoulli_distribution(p)(engine_);
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace nec
