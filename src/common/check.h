// Invariant checking utilities used across the NEC library.
//
// Policy (see DESIGN.md §6): constructor / IO failures throw
// `std::invalid_argument` / `std::runtime_error`; internal invariants use
// NEC_CHECK which throws `nec::CheckError` with file/line context so tests
// can assert on violations instead of aborting the process.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace nec {

/// Thrown when an NEC_CHECK invariant fails.
class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {

[[noreturn]] inline void CheckFailed(const char* expr, const char* file,
                                     int line, const std::string& msg) {
  std::ostringstream os;
  os << "NEC_CHECK failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckError(os.str());
}

}  // namespace detail
}  // namespace nec

/// Checks a boolean invariant; throws nec::CheckError on failure.
#define NEC_CHECK(expr)                                              \
  do {                                                               \
    if (!(expr)) {                                                   \
      ::nec::detail::CheckFailed(#expr, __FILE__, __LINE__, "");     \
    }                                                                \
  } while (0)

/// Checks a boolean invariant with a streamed message on failure.
#define NEC_CHECK_MSG(expr, msg)                                     \
  do {                                                               \
    if (!(expr)) {                                                   \
      std::ostringstream nec_check_os_;                              \
      nec_check_os_ << msg;                                          \
      ::nec::detail::CheckFailed(#expr, __FILE__, __LINE__,          \
                                 nec_check_os_.str());               \
    }                                                                \
  } while (0)

/// Debug-only invariant check for hot-path accessors (Tensor::At etc.):
/// full NEC_CHECK in builds without NDEBUG, compiled out entirely in
/// Release. Use where a violated precondition would silently read
/// misindexed memory but the check is too hot to pay for in production.
#ifndef NDEBUG
#define NEC_DCHECK(expr) NEC_CHECK(expr)
#define NEC_DCHECK_MSG(expr, msg) NEC_CHECK_MSG(expr, msg)
#else
#define NEC_DCHECK(expr) \
  do {                   \
  } while (0)
#define NEC_DCHECK_MSG(expr, msg) \
  do {                            \
  } while (0)
#endif
