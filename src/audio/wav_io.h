// Minimal RIFF/WAVE reader and writer.
//
// Supports mono/stereo 16-bit PCM and 32-bit IEEE float files; multi-channel
// input is downmixed to mono on load (the NEC pipeline is mono end-to-end).
// Used by the examples to dump listenable artifacts of each pipeline stage.
#pragma once

#include <string>

#include "audio/waveform.h"

namespace nec::audio {

/// Sample encodings supported by WriteWav.
enum class WavEncoding {
  kPcm16,    ///< 16-bit signed integer PCM (format tag 1)
  kFloat32,  ///< 32-bit IEEE float (format tag 3)
};

/// Reads a WAV file into a mono Waveform (multi-channel is averaged).
/// Throws std::runtime_error on malformed files or unsupported encodings.
Waveform ReadWav(const std::string& path);

/// Writes `wave` to `path`. Samples are clamped to [-1, 1] for kPcm16.
/// Throws std::runtime_error on IO failure.
void WriteWav(const std::string& path, const Waveform& wave,
              WavEncoding encoding = WavEncoding::kPcm16);

}  // namespace nec::audio
