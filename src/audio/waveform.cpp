#include "audio/waveform.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace nec::audio {

Waveform::Waveform(int sample_rate, std::size_t num_samples)
    : sample_rate_(sample_rate), samples_(num_samples, 0.0f) {
  NEC_CHECK_MSG(sample_rate > 0, "sample rate must be positive");
}

Waveform::Waveform(int sample_rate, std::vector<float> samples)
    : sample_rate_(sample_rate), samples_(std::move(samples)) {
  NEC_CHECK_MSG(sample_rate > 0, "sample rate must be positive");
}

double Waveform::duration() const {
  return sample_rate_ > 0
             ? static_cast<double>(samples_.size()) / sample_rate_
             : 0.0;
}

Waveform Waveform::Slice(std::size_t start, std::size_t count) const {
  Waveform out(sample_rate_, count);
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t src = start + i;
    out.samples_[i] = src < samples_.size() ? samples_[src] : 0.0f;
  }
  return out;
}

void Waveform::Scale(float gain) {
  for (float& s : samples_) s *= gain;
}

void Waveform::MixIn(const Waveform& other, std::size_t offset, float gain) {
  NEC_CHECK_MSG(other.sample_rate_ == sample_rate_,
                "sample-rate mismatch in MixIn: " << other.sample_rate_
                                                  << " vs " << sample_rate_);
  const std::size_t n =
      std::min(other.samples_.size(),
               offset < samples_.size() ? samples_.size() - offset : 0);
  for (std::size_t i = 0; i < n; ++i) {
    samples_[offset + i] += gain * other.samples_[i];
  }
}

void Waveform::Append(const Waveform& other) {
  if (empty() && sample_rate_ == 0) sample_rate_ = other.sample_rate_;
  NEC_CHECK(other.sample_rate_ == sample_rate_);
  samples_.insert(samples_.end(), other.samples_.begin(),
                  other.samples_.end());
}

void Waveform::AppendSilence(std::size_t n) {
  samples_.insert(samples_.end(), n, 0.0f);
}

void Waveform::AssignSilence(int sample_rate, std::size_t num_samples) {
  NEC_CHECK_MSG(sample_rate > 0, "sample rate must be positive");
  sample_rate_ = sample_rate;
  samples_.assign(num_samples, 0.0f);
}

void Waveform::Clip() {
  for (float& s : samples_) s = std::clamp(s, -1.0f, 1.0f);
}

float Waveform::Rms() const {
  if (samples_.empty()) return 0.0f;
  double acc = 0.0;
  for (float s : samples_) acc += static_cast<double>(s) * s;
  return static_cast<float>(std::sqrt(acc / samples_.size()));
}

float Waveform::Peak() const {
  float peak = 0.0f;
  for (float s : samples_) peak = std::max(peak, std::abs(s));
  return peak;
}

void Waveform::NormalizePeak(float target_peak) {
  const float peak = Peak();
  if (peak > 0.0f) Scale(target_peak / peak);
}

void Waveform::NormalizeRms(float target_rms) {
  const float rms = Rms();
  if (rms > 0.0f) Scale(target_rms / rms);
}

void Waveform::ResizeTo(std::size_t n) { samples_.resize(n, 0.0f); }

Waveform Mix(const Waveform& a, const Waveform& b, float gain_a,
             float gain_b) {
  NEC_CHECK(a.sample_rate() == b.sample_rate());
  Waveform out(a.sample_rate(), std::max(a.size(), b.size()));
  out.MixIn(a, 0, gain_a);
  out.MixIn(b, 0, gain_b);
  return out;
}

}  // namespace nec::audio
