// Core audio buffer type for the NEC library.
//
// A Waveform is a mono float PCM buffer tagged with a sample rate. Samples
// are nominally in [-1, 1] but intermediate processing may exceed that
// range; clipping only happens at explicit Clip() calls or in the microphone
// ADC model (nec::channel::MicrophoneModel).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace nec::audio {

/// Mono float audio buffer with an associated sample rate.
class Waveform {
 public:
  Waveform() = default;

  /// Creates a silent waveform of `num_samples` samples.
  Waveform(int sample_rate, std::size_t num_samples);

  /// Wraps existing samples (copied).
  Waveform(int sample_rate, std::vector<float> samples);

  /// Sample rate in Hz. Zero for a default-constructed (empty) waveform.
  int sample_rate() const { return sample_rate_; }

  std::size_t size() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  /// Duration in seconds.
  double duration() const;

  float& operator[](std::size_t i) { return samples_[i]; }
  float operator[](std::size_t i) const { return samples_[i]; }

  std::span<float> samples() { return samples_; }
  std::span<const float> samples() const { return samples_; }
  std::vector<float>& data() { return samples_; }
  const std::vector<float>& data() const { return samples_; }

  /// Returns a copy of the sample range [start, start+count), zero-padded
  /// if the range extends past the end.
  Waveform Slice(std::size_t start, std::size_t count) const;

  /// Multiplies every sample by `gain` (linear).
  void Scale(float gain);

  /// Adds `other` into this buffer starting at sample `offset`; samples of
  /// `other` that would land past the end are dropped. Sample rates must
  /// match. `gain` scales `other` during the add.
  void MixIn(const Waveform& other, std::size_t offset = 0, float gain = 1.0f);

  /// Appends the samples of `other` (sample rates must match).
  void Append(const Waveform& other);

  /// Appends `n` zero samples.
  void AppendSilence(std::size_t n);

  /// Clamps all samples into [-1, 1].
  void Clip();

  /// Root-mean-square of the samples (0 for empty).
  float Rms() const;

  /// Maximum absolute sample value (0 for empty).
  float Peak() const;

  /// Scales so that Peak() == `target_peak` (no-op on silence).
  void NormalizePeak(float target_peak = 0.95f);

  /// Scales so that Rms() == `target_rms` (no-op on silence).
  void NormalizeRms(float target_rms);

  /// Pads with zeros (or truncates) so size() == n.
  void ResizeTo(std::size_t n);

  /// Rebinds this buffer in place to `num_samples` zeroed samples at
  /// `sample_rate`, reusing existing capacity. Equivalent to assigning a
  /// freshly constructed Waveform(sample_rate, num_samples) but without
  /// reallocating once the buffer has reached steady-state size — the
  /// Into-style hot-path entry points build their results through this.
  void AssignSilence(int sample_rate, std::size_t num_samples);

 private:
  int sample_rate_ = 0;
  std::vector<float> samples_;
};

/// Mixes `a` and `b` sample-wise into a new waveform whose length is
/// max(len(a), len(b)). Sample rates must match.
Waveform Mix(const Waveform& a, const Waveform& b, float gain_a = 1.0f,
             float gain_b = 1.0f);

}  // namespace nec::audio
