#include "audio/level.h"

#include <algorithm>
#include <cmath>

namespace nec::audio {
namespace {
constexpr double kDbFloor = -300.0;
}  // namespace

double AmplitudeToDb(double ratio) {
  if (ratio <= 0.0) return kDbFloor;
  return std::max(kDbFloor, 20.0 * std::log10(ratio));
}

double PowerToDb(double ratio) {
  if (ratio <= 0.0) return kDbFloor;
  return std::max(kDbFloor, 10.0 * std::log10(ratio));
}

double DbToAmplitude(double db) { return std::pow(10.0, db / 20.0); }

double DbToPower(double db) { return std::pow(10.0, db / 10.0); }

double SplScale::SplToRms(double db_spl) const {
  return DbToAmplitude(db_spl - full_scale_db_spl_);
}

double SplScale::RmsToSpl(double rms) const {
  return full_scale_db_spl_ + AmplitudeToDb(rms);
}

}  // namespace nec::audio
