#include "audio/wav_io.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <stdexcept>
#include <vector>

namespace nec::audio {
namespace {

// All RIFF fields are little-endian; this code assumes a little-endian host
// (checked statically below for the platforms we target).
static_assert(std::endian::native == std::endian::little,
              "wav_io assumes a little-endian host");

template <typename T>
T ReadLe(std::istream& in) {
  T value{};
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  if (!in) throw std::runtime_error("wav: truncated file");
  return value;
}

template <typename T>
void WriteLe(std::ostream& out, T value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

struct FmtChunk {
  std::uint16_t format_tag = 0;
  std::uint16_t channels = 0;
  std::uint32_t sample_rate = 0;
  std::uint16_t bits_per_sample = 0;
};

}  // namespace

Waveform ReadWav(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("wav: cannot open " + path);

  char tag[4];
  in.read(tag, 4);
  if (!in || std::memcmp(tag, "RIFF", 4) != 0)
    throw std::runtime_error("wav: missing RIFF header in " + path);
  ReadLe<std::uint32_t>(in);  // riff size (unchecked; some writers lie)
  in.read(tag, 4);
  if (!in || std::memcmp(tag, "WAVE", 4) != 0)
    throw std::runtime_error("wav: not a WAVE file: " + path);

  FmtChunk fmt;
  bool have_fmt = false;
  bool have_data = false;
  std::vector<char> payload;

  while (in.read(tag, 4)) {
    const auto chunk_size = ReadLe<std::uint32_t>(in);
    if (std::memcmp(tag, "fmt ", 4) == 0) {
      fmt.format_tag = ReadLe<std::uint16_t>(in);
      fmt.channels = ReadLe<std::uint16_t>(in);
      fmt.sample_rate = ReadLe<std::uint32_t>(in);
      ReadLe<std::uint32_t>(in);  // byte rate
      ReadLe<std::uint16_t>(in);  // block align
      fmt.bits_per_sample = ReadLe<std::uint16_t>(in);
      if (chunk_size > 16) in.ignore(chunk_size - 16);
      have_fmt = true;
    } else if (std::memcmp(tag, "data", 4) == 0) {
      payload.resize(chunk_size);
      in.read(payload.data(), chunk_size);
      if (!in && chunk_size > 0)
        throw std::runtime_error("wav: truncated data chunk");
      have_data = true;
      break;
    } else {
      in.ignore(chunk_size + (chunk_size & 1));  // chunks are word-aligned
    }
  }

  if (!have_fmt) throw std::runtime_error("wav: missing fmt chunk");
  if (!have_data) throw std::runtime_error("wav: missing data chunk");
  if (fmt.channels == 0) throw std::runtime_error("wav: zero channels");

  const std::size_t bytes_per_sample = fmt.bits_per_sample / 8;
  if (bytes_per_sample == 0)
    throw std::runtime_error("wav: zero bits per sample");
  const std::size_t total =
      payload.size() / (bytes_per_sample * fmt.channels);

  std::vector<float> mono(total, 0.0f);
  const char* p = payload.data();
  if (fmt.format_tag == 1 && fmt.bits_per_sample == 16) {
    for (std::size_t i = 0; i < total; ++i) {
      float acc = 0.0f;
      for (unsigned c = 0; c < fmt.channels; ++c) {
        std::int16_t v;
        std::memcpy(&v, p, 2);
        p += 2;
        acc += static_cast<float>(v) / 32768.0f;
      }
      mono[i] = acc / fmt.channels;
    }
  } else if (fmt.format_tag == 3 && fmt.bits_per_sample == 32) {
    for (std::size_t i = 0; i < total; ++i) {
      float acc = 0.0f;
      for (unsigned c = 0; c < fmt.channels; ++c) {
        float v;
        std::memcpy(&v, p, 4);
        p += 4;
        acc += v;
      }
      mono[i] = acc / fmt.channels;
    }
  } else {
    throw std::runtime_error("wav: unsupported encoding (tag " +
                             std::to_string(fmt.format_tag) + ", " +
                             std::to_string(fmt.bits_per_sample) + " bit)");
  }

  return Waveform(static_cast<int>(fmt.sample_rate), std::move(mono));
}

void WriteWav(const std::string& path, const Waveform& wave,
              WavEncoding encoding) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("wav: cannot create " + path);

  const bool pcm16 = encoding == WavEncoding::kPcm16;
  const std::uint16_t bits = pcm16 ? 16 : 32;
  const std::uint32_t data_bytes =
      static_cast<std::uint32_t>(wave.size() * (bits / 8));

  out.write("RIFF", 4);
  WriteLe<std::uint32_t>(out, 36 + data_bytes);
  out.write("WAVE", 4);
  out.write("fmt ", 4);
  WriteLe<std::uint32_t>(out, 16);
  WriteLe<std::uint16_t>(out, pcm16 ? 1 : 3);
  WriteLe<std::uint16_t>(out, 1);  // mono
  WriteLe<std::uint32_t>(out, static_cast<std::uint32_t>(wave.sample_rate()));
  WriteLe<std::uint32_t>(out, static_cast<std::uint32_t>(wave.sample_rate()) *
                                  (bits / 8));
  WriteLe<std::uint16_t>(out, bits / 8);
  WriteLe<std::uint16_t>(out, bits);
  out.write("data", 4);
  WriteLe<std::uint32_t>(out, data_bytes);

  if (pcm16) {
    for (float s : wave.samples()) {
      const float c = std::clamp(s, -1.0f, 1.0f);
      WriteLe<std::int16_t>(
          out, static_cast<std::int16_t>(std::lrint(c * 32767.0f)));
    }
  } else {
    for (float s : wave.samples()) WriteLe<float>(out, s);
  }
  if (!out) throw std::runtime_error("wav: write failure for " + path);
}

}  // namespace nec::audio
