// Decibel / sound-pressure-level math used by the acoustic channel model
// and the evaluation harnesses.
//
// The paper (§VI, Fig. 15) reports speech levels in dB SPL measured 5 cm
// from the speaker's lips (77 dB_SPL) and tracks attenuation with distance.
// We map dB SPL onto digital full-scale so that a configurable reference
// level corresponds to RMS 1.0; all level arithmetic then happens in dB.
#pragma once

namespace nec::audio {

/// Converts a linear amplitude ratio to decibels. `ratio` must be > 0 for a
/// finite result; returns -infinity style large negative floor (-300 dB) for
/// non-positive input so metric code never sees NaNs.
double AmplitudeToDb(double ratio);

/// Converts a power ratio to decibels (floor at -300 dB, as above).
double PowerToDb(double ratio);

/// Converts decibels to a linear amplitude ratio.
double DbToAmplitude(double db);

/// Converts decibels to a linear power ratio.
double DbToPower(double db);

/// Mapping between dB SPL and digital amplitude.
///
/// `full_scale_db_spl` defines the SPL represented by a digital RMS of 1.0.
/// Default 94 dB SPL (the standard 1 Pa calibration level of measurement
/// microphones) — i.e. digital amplitude 1.0 ≙ 94 dB SPL.
class SplScale {
 public:
  explicit SplScale(double full_scale_db_spl = 94.0)
      : full_scale_db_spl_(full_scale_db_spl) {}

  /// Digital RMS corresponding to a given dB SPL.
  double SplToRms(double db_spl) const;

  /// dB SPL corresponding to a given digital RMS.
  double RmsToSpl(double rms) const;

  double full_scale_db_spl() const { return full_scale_db_spl_; }

 private:
  double full_scale_db_spl_;
};

}  // namespace nec::audio
